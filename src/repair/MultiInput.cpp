//===- MultiInput.cpp -----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/MultiInput.h"

#include "ast/Transforms.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace tdr;

MultiRepairResult
tdr::repairProgramForInputs(Program &P, AstContext &Ctx,
                            const std::vector<ExecOptions> &Inputs,
                            EspBagsDetector::Mode Mode) {
  MultiRepairResult R;
  for (size_t I = 0; I != Inputs.size(); ++I) {
    RepairOptions Opts;
    Opts.Mode = Mode;
    Opts.Exec = Inputs[I];
    RepairResult One = repairProgram(P, Ctx, Opts);
    R.IterationsPerInput.push_back(One.Stats.Iterations);
    if (!One.Success) {
      R.Error = strFormat("input %zu: %s", I, One.Error.c_str());
      return R;
    }
    if (One.Stats.FinishesInserted) {
      R.FinishesInserted += One.Stats.FinishesInserted;
      R.InputsThatContributed.push_back(I);
    }
  }

  // Final verification: re-detect on every input against the finished
  // program. The per-input loop above proves each input race free *at the
  // time it was processed*; this pass proves the conjunction holds for the
  // final finish set and names the offending input when it does not.
  for (size_t I = 0; I != Inputs.size(); ++I) {
    Detection D = detectRaces(P, Mode, Inputs[I]);
    if (!D.ok()) {
      R.FailedVerifyInput = I;
      R.Error = strFormat("verification: input %zu failed at run time: %s", I,
                          D.Exec.Error.c_str());
      return R;
    }
    if (!D.Report.Pairs.empty()) {
      R.FailedVerifyInput = I;
      R.Error = strFormat("verification: input %zu still has %zu racing "
                          "pair(s) after repair",
                          I, D.Report.Pairs.size());
      return R;
    }
  }
  R.FinalVerified = true;
  R.Success = true;
  return R;
}

namespace {

/// Counts dynamic async instances per static site.
class AsyncCounter : public ExecMonitor {
public:
  void onAsyncEnter(const AsyncStmt *S, const Stmt *) override {
    ++Counts[S];
  }
  std::unordered_map<const AsyncStmt *, uint64_t> Counts;
};

} // namespace

CoverageReport tdr::analyzeTestCoverage(Program &P,
                                        const std::vector<ExecOptions> &Inputs) {
  CoverageReport Report;
  std::vector<AsyncStmt *> Sites = collectAsyncs(P);
  for (AsyncStmt *S : Sites) {
    AsyncSiteCoverage C;
    C.Site = S;
    C.Loc = S->loc();
    C.InstancesPerInput.assign(Inputs.size(), 0);
    Report.Sites.push_back(std::move(C));
  }

  for (size_t I = 0; I != Inputs.size(); ++I) {
    AsyncCounter Counter;
    ExecOptions Opts = Inputs[I];
    Opts.Monitor = &Counter;
    ExecResult R = runProgram(P, Opts);
    if (!R.Ok) {
      // A crashing input exercises nothing reliably — record it so callers
      // can distinguish "ran and spawned nothing" from "never ran".
      Report.FailedInputs.push_back({I, R.Error});
      continue;
    }
    for (AsyncSiteCoverage &C : Report.Sites) {
      auto It = Counter.Counts.find(C.Site);
      if (It != Counter.Counts.end())
        C.InstancesPerInput[I] = It->second;
    }
  }

  for (const AsyncSiteCoverage &C : Report.Sites)
    if (C.exercised())
      ++Report.NumExercised;
    else
      ++Report.NumUnexercised;
  return Report;
}
