//===- RepairDriver.h - Test-driven repair tool driver -----------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the tool (paper Figure 6): iterate { detect races on the
/// test input -> dynamic finish placement -> static finish placement }
/// until the program is race free for that input.
///
/// Within one detection run, races are grouped by NS-LCA; groups are
/// solved deepest-first with the placement DP, each solution is applied to
/// the AST and replicated across the S-DPST, resolved races are dropped,
/// and remaining races are regrouped (their NS-LCAs may have changed —
/// paper step 3(f)). With the MRW detector one run normally suffices; with
/// SRW the outer loop iterates (paper §7.3).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_REPAIRDRIVER_H
#define TDR_REPAIR_REPAIRDRIVER_H

#include "diag/RunReport.h"
#include "race/Detect.h"
#include "repair/StaticPlacer.h"

#include <string>
#include <vector>

namespace tdr {

/// Repair configuration.
struct RepairOptions {
  EspBagsDetector::Mode Mode = EspBagsDetector::Mode::MRW;
  /// Detection backend for every run of the repair loop (see
  /// race/Detect.h); defaults to the TDR_BACKEND-selectable process
  /// default, so the environment reroutes unconfigured callers wholesale.
  DetectBackend Backend = defaultDetectBackend();
  ExecOptions Exec;            ///< the test input (args, seed, limits)
  unsigned MaxIterations = 8;  ///< outer detect/repair rounds (must be >= 1)
  /// Record-once / replay-many: the first detection run interprets the
  /// program and records its event stream; later iterations replay the
  /// stream through the detector (owners remapped through the finish edit
  /// map) instead of re-interpreting. Off = every iteration interprets
  /// (the --no-replay escape hatch).
  bool UseReplay = true;
  /// Runs every replayed detection twice — replayed and freshly
  /// interpreted — and fails the repair unless the reports are
  /// byte-identical. Also enabled by the TDR_REPLAY_CHECK environment
  /// variable (mirrors the RefDetectors differential pattern).
  bool ReplayCheck = false;
  /// Optional shared trace store: the driver records into / replays from
  /// entry InputIndex and broadcasts every AST edit to all recorded
  /// entries (multi-input repair keeps one log per input alive across the
  /// whole session). Null = a private store per repairProgram call.
  trace::TraceStore *Store = nullptr;
  size_t InputIndex = 0;
  /// Collect explainable diagnostics into RepairResult::Diag: one witness
  /// list per detection run (race witnesses with refined access sites) and
  /// one provenance record per inserted finish (the --report path). Off by
  /// default — witness reconstruction replays the recorded log once more
  /// per racy iteration.
  bool CollectDiag = false;
  /// Source manager used to resolve witness/provenance positions to
  /// line/col plus line text; null degrades positions to "unknown".
  /// repairSource supplies its own.
  const SourceManager *SM = nullptr;
  /// Allowlist of repair constructs the per-edge chooser may use (see
  /// repair/ConstructChoice.h). The default enables finish and
  /// future-forcing; `isolated` is opt-in (--constructs
  /// finish,future,isolated) because it reorders rather than orders the
  /// racing accesses.
  unsigned Constructs = constructs::Default;
};

/// Per-run measurements (the columns of Tables 2 and 3).
///
/// Derived from the obs metrics registry rather than hand-maintained:
/// Iterations and FinishesInserted are deltas of the `repair.iterations` /
/// `repair.finishes_inserted` counters over this run, and the first-run
/// shape fields read the `detect.*` gauges the detector publishes. The
/// same numbers therefore appear in `--metrics-json` dumps.
struct RepairStats {
  /// Wall-clock of each detection run (S-DPST construction + detection).
  std::vector<double> DetectMs;
  /// Wall-clock of each repair phase (grouping + DP + static placement).
  std::vector<double> RepairMs;
  size_t DpstNodes = 0;     ///< S-DPST nodes in the first detection run
  uint64_t RawRaces = 0;    ///< races reported (first run, pre-dedup)
  size_t RacePairs = 0;     ///< distinct racing step pairs (first run)
  unsigned Iterations = 0;  ///< detection runs performed
  unsigned FinishesInserted = 0;
  unsigned ForcesInserted = 0;   ///< `force(f);` statements inserted
  unsigned IsolatedInserted = 0; ///< `isolated { }` sections inserted
  unsigned Interpretations = 0; ///< detection runs that interpreted
  unsigned Replays = 0;         ///< detection runs that replayed the log

  double totalDetectMs() const {
    double T = 0;
    for (double D : DetectMs)
      T += D;
    return T;
  }
  double totalRepairMs() const {
    double T = 0;
    for (double D : RepairMs)
      T += D;
    return T;
  }
};

/// Outcome of a repair.
struct RepairResult {
  bool Success = false;      ///< race free for the input after repair
  std::string Error;         ///< failure description when !Success
  RepairStats Stats;
  /// Locations (in the pre-repair program text) where finishes were added.
  std::vector<SourceLoc> InsertedAt;
  /// Witnesses and provenance (populated when RepairOptions::CollectDiag).
  diag::RunDiag Diag;
};

/// Repairs \p P in place for the test input in \p Opts. The program must
/// have passed sema. On success the AST contains the synthesized finish
/// statements (print it with printProgram to obtain the repaired source).
RepairResult repairProgram(Program &P, AstContext &Ctx,
                           const RepairOptions &Opts = RepairOptions());

/// Full source-to-source pipeline: parse + sema + repair + print. Returns
/// the repaired source in \p RepairedOut. Convenience for tools/tests.
RepairResult repairSource(const std::string &Source, std::string &RepairedOut,
                          const RepairOptions &Opts = RepairOptions());

} // namespace tdr

#endif // TDR_REPAIR_REPAIRDRIVER_H
