//===- RepairDriver.cpp ---------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/RepairDriver.h"

#include "ast/AstPrinter.h"
#include "frontend/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdlib>

using namespace tdr;

namespace {

/// TDR_REPLAY_CHECK in the environment (non-empty, not "0") forces the
/// replayed-vs-fresh differential on every replayed detection — the
/// whole-suite escape hatch (`TDR_REPLAY_CHECK=1 ctest`).
bool replayCheckEnv() {
  const char *V = std::getenv("TDR_REPLAY_CHECK");
  return V && *V && !(V[0] == '0' && V[1] == '\0');
}

/// Rejected-placement records kept per group when collecting provenance
/// (the DP probes O(n^2) ranges; reports only need a taste of why the
/// chosen placement won).
constexpr size_t MaxRejections = 16;

/// What applying one group's plan did. Finish resolution is observable
/// through the S-DPST (mayHappenInParallel); force and isolated edits do
/// not update the tree, so the races they resolve are returned by identity
/// for the caller to drop from its pending set.
struct GroupApply {
  unsigned Finishes = 0;
  unsigned Forces = 0;
  unsigned Isolated = 0;
  /// Some applied edit changed the event stream (the caller must drop
  /// every recorded trace; see TraceStore::invalidateAll).
  bool InvalidatesTrace = false;
  /// (Src, Snk) step pairs resolved by non-finish edits.
  std::vector<std::pair<const DpstNode *, const DpstNode *>> NonFinishResolved;

  unsigned total() const { return Finishes + Forces + Isolated; }
};

/// Converts the chooser's alternative records for \p EdgeIdx into the
/// report-layer form (diag does not know repair's enum).
void appendAlternatives(const GroupPlan &Plan, size_t EdgeIdx,
                        diag::FinishProvenance &Prov) {
  for (const ConstructAlternative &Alt : Plan.Edges[EdgeIdx].Alternatives) {
    diag::RepairAlternative DA;
    DA.Construct = repairConstructName(Alt.Construct);
    DA.Feasible = Alt.Feasible;
    DA.Cost = Alt.Cost;
    DA.Reason = Alt.Reason;
    Prov.Alternatives.push_back(std::move(DA));
  }
}

/// Chooses a repair construct per dependence edge of one NS-LCA group and
/// applies the plan: the finish placement DP over the finish-assigned
/// edges, `force(f);` insertions for the force-assigned ones, and
/// `isolated { }` wraps for the isolated-assigned ones.
GroupApply solveGroup(const Dpst &Tree, const DepGroup &G,
                      StaticPlacer &Placer, RepairResult &Result,
                      const RepairOptions &Opts, unsigned Iter) {
  GroupApply Out;
  if (G.Problem.Edges.empty())
    return Out;
  const size_t NE = G.Problem.Edges.size();

  // Static applicability of the non-finish constructs, per edge. Probed
  // up front so the chooser works on a pure cost model.
  std::vector<EdgeCandidate> Cands(NE);
  for (size_t E = 0; E != NE; ++E) {
    auto [X, Y] = G.Problem.Edges[E];
    if (Opts.Constructs & constructs::Future) {
      Cands[E].CanForce = Placer.canForce(G, X, Y);
      if (!Cands[E].CanForce)
        Cands[E].ForceReason = Placer.lastRejectReason();
    }
    if (Opts.Constructs & constructs::Isolated) {
      Cands[E].CanIsolate = Placer.canIsolate(G, X, Y);
      if (Cands[E].CanIsolate)
        Cands[E].IsolatedPenalty = Placer.isolatedPenalty(G, X, Y);
      else
        Cands[E].IsolateReason = Placer.lastRejectReason();
    }
  }

  // The finish DP runs on the finish-assigned edge subset; the validity
  // oracle must see the same subset (mapBlockEdit's forbidden-sink check
  // reads the group's edges), so it is bound to a group copy whose edges
  // are swapped per solve. GFinish is also the group the chosen ranges are
  // applied against, so apply() re-checks under the subset it solved.
  std::vector<diag::PlacementRejection> Rejected;
  DepGroup GFinish = G;
  SolveFinishFn SolveFinish =
      [&](const std::vector<std::pair<uint32_t, uint32_t>> &Edges) {
        GFinish.Problem.Edges = Edges;
        return placeFinishes(GFinish.Problem, [&](uint32_t I, uint32_t K) {
          bool Ok = Placer.isValidRange(GFinish, I, K);
          if (!Ok && Opts.CollectDiag && Rejected.size() < MaxRejections)
            Rejected.push_back({I, K, Placer.lastRejectReason()});
          return Ok;
        });
      };

  GroupPlan Plan = planConstructs(G.Problem, Opts.Constructs, Cands,
                                  SolveFinish);

  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  std::vector<char> EdgeIsFinish(NE, 1);
  if (Plan.Feasible) {
    Ranges = Plan.FinishRanges;
    for (size_t E = 0; E != NE; ++E)
      EdgeIsFinish[E] =
          Plan.Edges[E].Construct == RepairConstruct::Finish ? 1 : 0;
    // Re-bind the oracle's group to the finish subset the plan solved.
    GFinish.Problem.Edges.clear();
    for (size_t E = 0; E != NE; ++E)
      if (EdgeIsFinish[E])
        GFinish.Problem.Edges.push_back(G.Problem.Edges[E]);
  } else {
    // Infeasible: the oracle rejected every partition, including some
    // single-node wraps. Still try to serialize each race source
    // individually — Placer.apply re-checks per range, so unapplicable
    // wraps are skipped and the iteration loop decides whether the
    // remaining races make the repair fail.
    for (auto [X, Y] : G.Problem.Edges) {
      (void)Y;
      Ranges.push_back({X, X});
    }
    std::sort(Ranges.begin(), Ranges.end());
    Ranges.erase(std::unique(Ranges.begin(), Ranges.end()), Ranges.end());
    GFinish.Problem.Edges = G.Problem.Edges;
  }

  // Provenance cost model: the group's critical path with no repairs vs
  // with the chosen plan (equals Plan.Cost on the feasible path, isolated
  // penalties included).
  uint64_t CostBefore = 0, CostAfter = 0;
  if (Opts.CollectDiag) {
    CostBefore = evalPlacementCost(G.Problem, {});
    CostAfter = Plan.Feasible ? Plan.Cost : evalPlacementCost(G.Problem,
                                                              Ranges);
  }

  // Apply innermost-first so statement indices of outer ranges account for
  // the finishes inner ranges introduce.
  std::sort(Ranges.begin(), Ranges.end(),
            [](const auto &A, const auto &B) {
              uint32_t LenA = A.second - A.first;
              uint32_t LenB = B.second - B.first;
              if (LenA != LenB)
                return LenA < LenB;
              return A.first < B.first;
            });

  // One static edit can resolve many dynamic ranges at once (it applies to
  // every instance of the site), so before applying a range check that it
  // still resolves a live race; otherwise the same statement would collect
  // redundant nested finishes. Races whose edge went to a non-finish
  // construct never justify a range.
  std::vector<char> Alive(G.Races.size(), 1);
  auto RefreshAlive = [&] {
    for (size_t R = 0; R != G.Races.size(); ++R)
      if (Alive[R] &&
          !Tree.mayHappenInParallel(G.Races[R].Src, G.Races[R].Snk))
        Alive[R] = 0;
  };
  RefreshAlive();
  auto EdgeIndexOf = [&](uint32_t X, uint32_t Y) -> size_t {
    for (size_t E = 0; E != NE; ++E)
      if (G.Problem.Edges[E] == std::make_pair(X, Y))
        return E;
    return NE;
  };

  for (auto [S, E] : Ranges) {
    bool Needed = false;
    for (size_t R = 0; R != G.Races.size() && !Needed; ++R) {
      auto [X, Y] = G.RaceIdx[R];
      size_t EI = EdgeIndexOf(X, Y);
      Needed = Alive[R] && (EI == NE || EdgeIsFinish[EI]) && S <= X &&
               X <= E && E < Y;
    }
    if (!Needed)
      continue;
    if (auto A = Placer.apply(GFinish, S, E)) {
      Result.InsertedAt.push_back(A->AnchorLoc);
      if (Opts.CollectDiag) {
        diag::FinishProvenance Prov;
        Prov.Iteration = Iter;
        Prov.GroupLcaId = G.Lca->id();
        Prov.Anchor = diag::resolvePos(Opts.SM, A->AnchorLoc);
        Prov.DynamicInstances = A->DynamicInstances;
        Prov.CostBefore = CostBefore;
        Prov.CostAfter = CostAfter;
        for (size_t EI = 0; EI != NE; ++EI) {
          auto [X, Y] = G.Problem.Edges[EI];
          if (EdgeIsFinish[EI] && S <= X && X <= E && E < Y) {
            Prov.ForcedEdges.push_back({X, Y});
            if (Plan.Feasible)
              appendAlternatives(Plan, EI, Prov);
          }
        }
        // The group's rejection log rides on its first applied repair.
        Prov.Rejected = std::move(Rejected);
        Rejected.clear();
        Result.Diag.Repairs.push_back(std::move(Prov));
      }
      ++Out.Finishes;
      RefreshAlive();
    }
  }

  // Non-finish edits, per edge. applyForce/applyIsolated re-map under the
  // post-finish AST (indices looked up through synthesized wrappers); a
  // mapping that fails here leaves the edge's races pending, and the next
  // detection run picks them up again.
  if (Plan.Feasible) {
    for (size_t EI = 0; EI != NE; ++EI) {
      const EdgeChoice &EC = Plan.Edges[EI];
      if (EC.Construct == RepairConstruct::Finish)
        continue;
      std::optional<AppliedRepair> A =
          EC.Construct == RepairConstruct::ForceFuture
              ? Placer.applyForce(G, EC.X, EC.Y)
              : Placer.applyIsolated(G, EC.X, EC.Y);
      if (!A)
        continue;
      Result.InsertedAt.push_back(A->AnchorLoc);
      if (EC.Construct == RepairConstruct::ForceFuture)
        ++Out.Forces;
      else
        ++Out.Isolated;
      Out.InvalidatesTrace |= A->InvalidatesTrace;
      for (size_t R = 0; R != G.Races.size(); ++R)
        if (G.RaceIdx[R] == std::make_pair(EC.X, EC.Y))
          Out.NonFinishResolved.push_back(
              {G.Races[R].Src, G.Races[R].Snk});
      if (Opts.CollectDiag) {
        diag::FinishProvenance Prov;
        Prov.Iteration = Iter;
        Prov.GroupLcaId = G.Lca->id();
        Prov.Construct = repairConstructName(EC.Construct);
        Prov.Anchor = diag::resolvePos(Opts.SM, A->AnchorLoc);
        Prov.DynamicInstances = A->DynamicInstances;
        Prov.CostBefore = CostBefore;
        Prov.CostAfter = CostAfter;
        Prov.ForcedEdges.push_back({EC.X, EC.Y});
        appendAlternatives(Plan, EI, Prov);
        Prov.Rejected = std::move(Rejected);
        Rejected.clear();
        Result.Diag.Repairs.push_back(std::move(Prov));
      }
    }
  }
  return Out;
}

} // namespace

RepairResult tdr::repairProgram(Program &P, AstContext &Ctx,
                                const RepairOptions &Opts) {
  obs::ScopedSpan RepairSpan(obs::phase::Repair);
  // The driver's instrument set. RepairStats is derived from these (and
  // the detect.* gauges the detector publishes), not hand-maintained: the
  // hook points are the single source of truth and the registry dump, the
  // trace, and the returned stats all agree. Resolved against the current
  // (per-run under ScopedMetrics) registry so concurrent repairs don't
  // perturb each other's deltas.
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::current();
  obs::Counter &CIterations = Reg.counter("repair.iterations");
  obs::Counter &CFinishes = Reg.counter("repair.finishes_inserted");
  obs::Counter &CForces = Reg.counter("repair.forces_inserted");
  obs::Counter &CIsolated = Reg.counter("repair.isolated_inserted");
  obs::Counter &CInterps = Reg.counter("repair.interpretations");
  obs::Counter &CReplays = Reg.counter("repair.replays");
  const uint64_t ItersBase = CIterations.value();
  const uint64_t FinishesBase = CFinishes.value();
  const uint64_t ForcesBase = CForces.value();
  const uint64_t IsolatedBase = CIsolated.value();
  const uint64_t InterpsBase = CInterps.value();
  const uint64_t ReplaysBase = CReplays.value();

  RepairResult Result;
  RepairStats &Stats = Result.Stats;
  auto DeriveStats = [&] {
    Stats.Iterations = static_cast<unsigned>(CIterations.value() - ItersBase);
    Stats.FinishesInserted =
        static_cast<unsigned>(CFinishes.value() - FinishesBase);
    Stats.ForcesInserted = static_cast<unsigned>(CForces.value() - ForcesBase);
    Stats.IsolatedInserted =
        static_cast<unsigned>(CIsolated.value() - IsolatedBase);
    Stats.Interpretations =
        static_cast<unsigned>(CInterps.value() - InterpsBase);
    Stats.Replays = static_cast<unsigned>(CReplays.value() - ReplaysBase);
  };

  // A repair needs at least one detection run: with zero iterations even a
  // race-free program would fall out of the loop and be reported as
  // unrepaired ("races remained after 0 repair iterations").
  if (Opts.MaxIterations == 0) {
    Result.Error = "MaxIterations must be at least 1: a repair cannot verify "
                   "the program without a detection run";
    return Result;
  }

  // Record-once / replay-many: the store owns the per-input event log and
  // the finish edit map accumulated against it. A caller-provided store
  // survives this call (multi-input repair); otherwise the trace lives and
  // dies with this run.
  trace::TraceStore LocalStore;
  trace::TraceStore &Store = Opts.Store ? *Opts.Store : LocalStore;
  const size_t Slot = Opts.Store ? Opts.InputIndex : 0;
  const bool ReplayCheck = Opts.ReplayCheck || replayCheckEnv();
  DetectOptions Detect;
  Detect.Mode = Opts.Mode;
  Detect.Backend = Opts.Backend;

  for (unsigned Iter = 0; Iter != Opts.MaxIterations; ++Iter) {
    trace::TraceEntry &Entry = Store.entry(Slot);
    Timer DetectTimer;
    Detection D;
    // Witness-site refinement needs the event stream the detection saw
    // and the plan it ran under (so the scratch tree's ids line up).
    const trace::EventLog *WitLog = nullptr;
    trace::ReplayPlan WitPlan;
    bool Replayed = false;
    if (Opts.UseReplay && Entry.Recorded) {
      trace::ReplayPlan Plan = trace::buildReplayPlan(P, Entry.Edits);
      D = detectRaces(P, Detect, Entry.Trace, Plan);
      CReplays.inc();
      Replayed = true;
      if (Opts.CollectDiag) {
        WitLog = &Entry.Trace.Log;
        WitPlan = std::move(Plan);
      }
      if (ReplayCheck) {
        // Differential escape hatch: interpret anyway and demand the
        // replayed report be byte-identical (the caller's monitor is not
        // re-fed — it already observed this execution once).
        ExecOptions FreshExec = Opts.Exec;
        FreshExec.Monitor = nullptr;
        Detection Fresh = detectRaces(P, Detect, std::move(FreshExec));
        if (renderRaceReportKey(D.Report) !=
            renderRaceReportKey(Fresh.Report)) {
          Result.Error = strFormat(
              "replay/fresh detection mismatch at iteration %u", Iter);
          return Result;
        }
      }
    } else if (Opts.UseReplay) {
      // First run for this input: interpret once, recording the full event
      // stream so later iterations (and multi-input verification) replay.
      Entry.reset();
      trace::RecorderMonitor Recorder(Entry.Trace.Log);
      ExecOptions Exec = Opts.Exec;
      MonitorPipeline Pipeline;
      if (Exec.Monitor) {
        Pipeline.add(Exec.Monitor);
        Pipeline.add(&Recorder);
        Exec.Monitor = &Pipeline;
      } else {
        Exec.Monitor = &Recorder;
      }
      D = detectRaces(P, Detect, std::move(Exec));
      Recorder.flush();
      Entry.Trace.Exec = D.Exec;
      // Recorded even when the input failed at run time: coverage analysis
      // reuses the partial log and the recorded error.
      Entry.Recorded = true;
      CInterps.inc();
      if (Opts.CollectDiag)
        WitLog = &Entry.Trace.Log; // fresh recording: identity plan
    } else {
      D = detectRaces(P, Detect, Opts.Exec);
      CInterps.inc();
    }
    double DetectMs = DetectTimer.elapsedMs();
    Stats.DetectMs.push_back(DetectMs);
    obs::histogram("repair.detect_ms").observe(DetectMs);
    CIterations.inc();
    DeriveStats();

    if (!D.ok()) {
      Result.Error = strFormat("test input failed at run time: %s",
                               D.Exec.Error.c_str());
      return Result;
    }
    if (Opts.CollectDiag) {
      diag::IterationDiag ID;
      ID.Iteration = Iter;
      ID.Replayed = Replayed;
      ID.Witnesses = diag::buildWitnesses(*D.Tree, D.Report, Opts.SM, WitLog,
                                          WitLog ? &WitPlan : nullptr);
      Result.Diag.Iterations.push_back(std::move(ID));
    }
    if (Iter == 0) {
      // First-run shape columns of Tables 2/3, read back from the gauges
      // detectRaces just published.
      Stats.DpstNodes =
          static_cast<size_t>(Reg.gaugeValue("detect.dpst_nodes"));
      Stats.RawRaces = static_cast<uint64_t>(Reg.gaugeValue("detect.races_raw"));
      Stats.RacePairs =
          static_cast<size_t>(Reg.gaugeValue("detect.race_pairs"));
    }
    if (D.Report.Pairs.empty()) {
      Result.Success = true;
      return Result;
    }

    Timer RepairTimer;
    obs::ScopedSpan PlaceSpan(obs::phase::Placement);
    // Every AST edit is broadcast into the store so each recorded input's
    // edit map stays in sync with the (shared) program.
    StaticPlacer Placer(*D.Tree, Ctx, P, &Store);
    std::vector<RacePair> Pending = D.Report.Pairs;

    // Process NS-LCA groups deepest-first, regrouping after each since
    // inserted finishes can change the NS-LCA of remaining races.
    bool Progress = true;
    bool InvalidateTraces = false;
    while (!Pending.empty() && Progress) {
      Progress = false;
      std::vector<DepGroup> Groups = buildDepGroups(*D.Tree, Pending);
      assert(!Groups.empty());
      GroupApply Applied =
          solveGroup(*D.Tree, Groups.front(), Placer, Result, Opts, Iter);
      CFinishes.inc(Applied.Finishes);
      CForces.inc(Applied.Forces);
      CIsolated.inc(Applied.Isolated);
      DeriveStats();
      InvalidateTraces |= Applied.InvalidatesTrace;

      // Finish edits resolve races observably (the S-DPST gained join
      // nodes); force/isolated edits do not touch the tree, so their
      // resolved races are dropped by identity and the next detection run
      // (on freshly recorded traces) is the ground truth.
      size_t Before = Pending.size();
      Pending.erase(
          std::remove_if(
              Pending.begin(), Pending.end(),
              [&](const RacePair &R) {
                if (!D.Tree->mayHappenInParallel(R.Src, R.Snk))
                  return true;
                for (auto [Src, Snk] : Applied.NonFinishResolved)
                  if (R.Src == Src && R.Snk == Snk)
                    return true;
                return false;
              }),
          Pending.end());
      Progress = Applied.total() != 0 && Pending.size() < Before;
    }
    double RepairMs = RepairTimer.elapsedMs();
    Stats.RepairMs.push_back(RepairMs);
    obs::histogram("repair.repair_ms").observe(RepairMs);

    // Force insertions and isolated wraps change the event stream itself
    // (new force events; steps split by section boundaries), so no
    // recorded log is replayable against the edited program. Drop them
    // all; the next detection per input re-interprets and re-records.
    if (InvalidateTraces)
      Store.invalidateAll();

    if (!Pending.empty() && Stats.FinishesInserted + Stats.ForcesInserted +
                                    Stats.IsolatedInserted ==
                                0) {
      Result.Error = "no applicable repair was found for the "
                     "remaining races";
      return Result;
    }
    // Loop: the next detection run verifies (and, for SRW, finds races the
    // single-reader-writer shadow memory missed).
  }

  Result.Error = strFormat("races remained after %u repair iterations",
                           Opts.MaxIterations);
  return Result;
}

RepairResult tdr::repairSource(const std::string &Source,
                               std::string &RepairedOut,
                               const RepairOptions &Opts) {
  RepairResult Result;
  SourceManager SM("input.hj", Source);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser Parse(SM.buffer(), Ctx, Diags);
  Program *P = Parse.parseProgram();
  if (!Diags.hasErrors())
    runSema(*P, Ctx, Diags);
  if (Diags.hasErrors()) {
    Result.Error = Diags.render(SM);
    return Result;
  }
  // Witness positions must resolve against this parse's source manager,
  // whatever the caller left in Opts.
  RepairOptions LocalOpts = Opts;
  LocalOpts.SM = &SM;
  Result = repairProgram(*P, Ctx, LocalOpts);
  RepairedOut = printProgram(*P);
  return Result;
}
