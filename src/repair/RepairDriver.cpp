//===- RepairDriver.cpp ---------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/RepairDriver.h"

#include "ast/AstPrinter.h"
#include "frontend/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>

using namespace tdr;

namespace {

/// Applies the DP solution for one NS-LCA group. Returns the number of
/// finishes successfully applied.
unsigned solveGroup(const Dpst &Tree, const DepGroup &G, StaticPlacer &Placer,
                    RepairResult &Result) {
  if (G.Problem.Edges.empty())
    return 0;

  PlacementResult DP = placeFinishes(
      G.Problem, [&](uint32_t I, uint32_t K) {
        return Placer.isValidRange(G, I, K);
      });

  std::vector<std::pair<uint32_t, uint32_t>> Ranges;
  if (DP.Feasible) {
    Ranges = DP.Finishes;
  } else {
    // Infeasible: the oracle rejected every partition, including some
    // single-node wraps. Still try to serialize each race source
    // individually — Placer.apply re-checks per range, so unapplicable
    // wraps are skipped and the iteration loop decides whether the
    // remaining races make the repair fail.
    for (auto [X, Y] : G.Problem.Edges) {
      (void)Y;
      Ranges.push_back({X, X});
    }
    std::sort(Ranges.begin(), Ranges.end());
    Ranges.erase(std::unique(Ranges.begin(), Ranges.end()), Ranges.end());
  }

  // Apply innermost-first so statement indices of outer ranges account for
  // the finishes inner ranges introduce.
  std::sort(Ranges.begin(), Ranges.end(),
            [](const auto &A, const auto &B) {
              uint32_t LenA = A.second - A.first;
              uint32_t LenB = B.second - B.first;
              if (LenA != LenB)
                return LenA < LenB;
              return A.first < B.first;
            });

  // One static edit can resolve many dynamic ranges at once (it applies to
  // every instance of the site), so before applying a range check that it
  // still resolves a live race; otherwise the same statement would collect
  // redundant nested finishes.
  std::vector<char> Alive(G.Races.size(), 1);
  auto RefreshAlive = [&] {
    for (size_t R = 0; R != G.Races.size(); ++R)
      if (Alive[R] &&
          !Tree.mayHappenInParallel(G.Races[R].Src, G.Races[R].Snk))
        Alive[R] = 0;
  };
  RefreshAlive();

  unsigned AppliedCount = 0;
  for (auto [S, E] : Ranges) {
    bool Needed = false;
    for (size_t R = 0; R != G.Races.size() && !Needed; ++R) {
      auto [X, Y] = G.RaceIdx[R];
      Needed = Alive[R] && S <= X && X <= E && E < Y;
    }
    if (!Needed)
      continue;
    if (auto A = Placer.apply(G, S, E)) {
      Result.InsertedAt.push_back(A->AnchorLoc);
      ++AppliedCount;
      RefreshAlive();
    }
  }
  return AppliedCount;
}

} // namespace

RepairResult tdr::repairProgram(Program &P, AstContext &Ctx,
                                const RepairOptions &Opts) {
  obs::ScopedSpan RepairSpan("repair", "repair");
  // The driver's instrument set. RepairStats is derived from these (and
  // the detect.* gauges the detector publishes), not hand-maintained: the
  // hook points are the single source of truth and the registry dump, the
  // trace, and the returned stats all agree. Resolved against the current
  // (per-run under ScopedMetrics) registry so concurrent repairs don't
  // perturb each other's deltas.
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::current();
  obs::Counter &CIterations = Reg.counter("repair.iterations");
  obs::Counter &CFinishes = Reg.counter("repair.finishes_inserted");
  const uint64_t ItersBase = CIterations.value();
  const uint64_t FinishesBase = CFinishes.value();

  RepairResult Result;
  RepairStats &Stats = Result.Stats;
  auto DeriveStats = [&] {
    Stats.Iterations = static_cast<unsigned>(CIterations.value() - ItersBase);
    Stats.FinishesInserted =
        static_cast<unsigned>(CFinishes.value() - FinishesBase);
  };

  for (unsigned Iter = 0; Iter != Opts.MaxIterations; ++Iter) {
    Timer DetectTimer;
    Detection D = detectRaces(P, Opts.Mode, Opts.Exec);
    double DetectMs = DetectTimer.elapsedMs();
    Stats.DetectMs.push_back(DetectMs);
    obs::histogram("repair.detect_ms").observe(DetectMs);
    CIterations.inc();
    DeriveStats();

    if (!D.ok()) {
      Result.Error = strFormat("test input failed at run time: %s",
                               D.Exec.Error.c_str());
      return Result;
    }
    if (Iter == 0) {
      // First-run shape columns of Tables 2/3, read back from the gauges
      // detectRaces just published.
      Stats.DpstNodes =
          static_cast<size_t>(Reg.gaugeValue("detect.dpst_nodes"));
      Stats.RawRaces = static_cast<uint64_t>(Reg.gaugeValue("detect.races_raw"));
      Stats.RacePairs =
          static_cast<size_t>(Reg.gaugeValue("detect.race_pairs"));
    }
    if (D.Report.Pairs.empty()) {
      Result.Success = true;
      return Result;
    }

    Timer RepairTimer;
    obs::ScopedSpan PlaceSpan("placement", "repair");
    StaticPlacer Placer(*D.Tree, Ctx, P);
    std::vector<RacePair> Pending = D.Report.Pairs;

    // Process NS-LCA groups deepest-first, regrouping after each since
    // inserted finishes can change the NS-LCA of remaining races.
    bool Progress = true;
    while (!Pending.empty() && Progress) {
      Progress = false;
      std::vector<DepGroup> Groups = buildDepGroups(*D.Tree, Pending);
      assert(!Groups.empty());
      unsigned Applied = solveGroup(*D.Tree, Groups.front(), Placer, Result);
      CFinishes.inc(Applied);
      DeriveStats();

      size_t Before = Pending.size();
      Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                   [&](const RacePair &R) {
                                     return !D.Tree->mayHappenInParallel(
                                         R.Src, R.Snk);
                                   }),
                    Pending.end());
      Progress = Applied != 0 && Pending.size() < Before;
    }
    double RepairMs = RepairTimer.elapsedMs();
    Stats.RepairMs.push_back(RepairMs);
    obs::histogram("repair.repair_ms").observe(RepairMs);

    if (!Pending.empty() && Stats.FinishesInserted == 0) {
      Result.Error = "no applicable finish placement was found for the "
                     "remaining races";
      return Result;
    }
    // Loop: the next detection run verifies (and, for SRW, finds races the
    // single-reader-writer shadow memory missed).
  }

  Result.Error = strFormat("races remained after %u repair iterations",
                           Opts.MaxIterations);
  return Result;
}

RepairResult tdr::repairSource(const std::string &Source,
                               std::string &RepairedOut,
                               const RepairOptions &Opts) {
  RepairResult Result;
  SourceManager SM("input.hj", Source);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser Parse(SM.buffer(), Ctx, Diags);
  Program *P = Parse.parseProgram();
  if (!Diags.hasErrors())
    runSema(*P, Ctx, Diags);
  if (Diags.hasErrors()) {
    Result.Error = Diags.render(SM);
    return Result;
  }
  Result = repairProgram(*P, Ctx, Opts);
  RepairedOut = printProgram(*P);
  return Result;
}
