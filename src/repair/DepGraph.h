//===- DepGraph.h - Dependence graphs at NS-LCAs ------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence graph construction (paper §5.1): races are grouped by the
/// NS-LCA of their source and sink steps; within a group, the graph's
/// vertices are the NS-LCA's non-scope children in left-to-right order and
/// each race becomes an edge between the children that are ancestors of its
/// source and sink.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_DEPGRAPH_H
#define TDR_REPAIR_DEPGRAPH_H

#include "dpst/Dpst.h"
#include "race/RaceReport.h"
#include "repair/FinishPlacement.h"

#include <vector>

namespace tdr {

/// The dependence graph of one NS-LCA, plus the races it covers.
struct DepGroup {
  DpstNode *Lca = nullptr;
  /// Non-scope children of Lca, left-to-right. Graph/problem indices refer
  /// to this vector.
  std::vector<DpstNode *> Nodes;
  /// The DP input: times, async flags, and deduplicated edges.
  PlacementProblem Problem;
  /// Races grouped here.
  std::vector<RacePair> Races;
  /// Per race, the (source, sink) vertex indices in Nodes/Problem (after
  /// coarsening). Parallel to Races.
  std::vector<std::pair<uint32_t, uint32_t>> RaceIdx;
};

/// Groups \p Races by NS-LCA and builds each group's dependence graph.
/// Node times use step weights and subtree critical path lengths (an async
/// vertex's execution time is the time to complete its whole subtree).
/// Groups are ordered deepest-NS-LCA first.
std::vector<DepGroup> buildDepGroups(const Dpst &Tree,
                                     const std::vector<RacePair> &Races);

} // namespace tdr

#endif // TDR_REPAIR_DEPGRAPH_H
