//===- ConstructChoice.h - Per-edge repair construct choice ------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repair layer's construct vocabulary. The paper repairs every race by
/// inserting `finish`; this module generalizes the per-dependence-edge
/// decision to a choice among
///
///  * Finish      — enclose a child range in `finish` (the paper's repair);
///  * ForceFuture — when the edge's source is a future, insert `force(f);`
///                  in front of the sink's statement: the force is a join
///                  edge that orders only the future's subtree before the
///                  sink, leaving unrelated asyncs running;
///  * Isolated    — wrap both racing statements in `isolated { }` sections:
///                  the accesses commute under mutual exclusion, no
///                  ordering is imposed at all.
///
/// The chooser minimizes the same critical-path objective as the finish
/// placement DP, extended with force join edges (evalConstructCost) and a
/// contention penalty per isolated edge. Construct availability is gated
/// by an allowlist mask (`--constructs finish,future,isolated`): the
/// default enables finish and future-forcing only — isolated weakens the
/// determinism argument (it reorders, rather than orders, the accesses),
/// so it is opt-in.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_CONSTRUCTCHOICE_H
#define TDR_REPAIR_CONSTRUCTCHOICE_H

#include "repair/FinishPlacement.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tdr {

/// How one dependence edge is cut.
enum class RepairConstruct : uint8_t { Finish = 0, ForceFuture = 1,
                                       Isolated = 2 };

/// Stable lowercase name used in reports and the CLI ("finish", "force",
/// "isolated").
const char *repairConstructName(RepairConstruct C);

/// Allowlist bits for RepairOptions::Constructs and --constructs.
namespace constructs {
inline constexpr unsigned Finish = 1u << 0;
inline constexpr unsigned Future = 1u << 1;
inline constexpr unsigned Isolated = 1u << 2;
/// Default: the paper's finish repair plus future-forcing (a no-op on
/// programs without futures). Isolated is opt-in.
inline constexpr unsigned Default = Finish | Future;
inline constexpr unsigned All = Finish | Future | Isolated;
} // namespace constructs

/// Parses a comma-separated allowlist ("finish,future,isolated"). Accepts
/// each name once in any order; the list must be non-empty and contain
/// "finish" (every other construct has applicability conditions, so a
/// repair without the finish fallback could not guarantee progress).
/// Returns false with a message in \p Error on unknown or malformed specs.
bool parseConstructList(const std::string &Spec, unsigned &Mask,
                        std::string &Error);

/// Renders \p Mask back to the canonical comma list.
std::string formatConstructMask(unsigned Mask);

/// Static applicability of the non-finish constructs to one edge, probed
/// by the caller (StaticPlacer owns the AST mapping) before planning.
struct EdgeCandidate {
  bool CanForce = false;
  bool CanIsolate = false;
  /// Modeled critical-path penalty of isolating this edge: serialized
  /// section time, summed over the edge's races (min of the two racing
  /// steps' weights each, at least 1 so isolation is never free).
  uint64_t IsolatedPenalty = 0;
  /// Why the construct does not apply (reported as an infeasible
  /// alternative when the mask allows the construct).
  std::string ForceReason;
  std::string IsolateReason;
};

/// A rejected (or losing) alternative for provenance.
struct ConstructAlternative {
  RepairConstruct Construct = RepairConstruct::Finish;
  bool Feasible = false;
  uint64_t Cost = 0; ///< modeled group cost when feasible
  std::string Reason;
};

/// The chooser's verdict for one edge.
struct EdgeChoice {
  uint32_t X = 0, Y = 0;
  RepairConstruct Construct = RepairConstruct::Finish;
  /// The alternatives considered for this edge and not chosen, with their
  /// modeled costs (or the reason they were inapplicable).
  std::vector<ConstructAlternative> Alternatives;
};

/// The plan for one dependence group.
struct GroupPlan {
  bool Feasible = false;
  /// Parallel to PlacementProblem::Edges.
  std::vector<EdgeChoice> Edges;
  /// DP solution over the finish-assigned edges only.
  std::vector<std::pair<uint32_t, uint32_t>> FinishRanges;
  /// Force edges (future child index, sink child index) assigned
  /// ForceFuture.
  std::vector<std::pair<uint32_t, uint32_t>> ForceEdges;
  /// Modeled completion time of the chosen plan, isolated penalties
  /// included.
  uint64_t Cost = 0;
  /// Cost of the best pure-finish plan (UINT64_MAX when infeasible);
  /// lets reports state what choosing a non-finish construct saved.
  uint64_t AllFinishCost = 0;
};

/// Runs the finish DP on \p Problem restricted to \p Edges (the validity
/// oracle already bound to the group).
using SolveFinishFn =
    std::function<PlacementResult(const std::vector<std::pair<uint32_t,
                                                              uint32_t>> &)>;

/// Chooses a construct per edge of \p Problem. Greedy descent from the
/// all-finish assignment: edges are visited in order and moved to the
/// construct minimizing the modeled group cost, holding the other edges'
/// assignments fixed; ties keep the lower-ranked construct
/// (finish < force < isolated), so the plan only deviates from the paper's
/// repair when it is strictly cheaper. Infeasible when no assignment has a
/// realizable finish DP for its finish-assigned edges.
GroupPlan planConstructs(const PlacementProblem &Problem, unsigned Mask,
                         const std::vector<EdgeCandidate> &Candidates,
                         const SolveFinishFn &SolveFinish);

} // namespace tdr

#endif // TDR_REPAIR_CONSTRUCTCHOICE_H
