//===- ConstructChoice.cpp ------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/ConstructChoice.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <limits>

using namespace tdr;

namespace {
constexpr uint64_t Infinite = std::numeric_limits<uint64_t>::max();
} // namespace

const char *tdr::repairConstructName(RepairConstruct C) {
  switch (C) {
  case RepairConstruct::Finish:
    return "finish";
  case RepairConstruct::ForceFuture:
    return "force";
  case RepairConstruct::Isolated:
    return "isolated";
  }
  return "?";
}

bool tdr::parseConstructList(const std::string &Spec, unsigned &Mask,
                             std::string &Error) {
  unsigned M = 0;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Tok = Spec.substr(Pos, Comma - Pos);
    unsigned Bit;
    if (Tok == "finish")
      Bit = constructs::Finish;
    else if (Tok == "future")
      Bit = constructs::Future;
    else if (Tok == "isolated")
      Bit = constructs::Isolated;
    else {
      Error = Tok.empty() ? "empty construct name in list"
                          : "unknown construct '" + Tok +
                                "' (expected finish, future, or isolated)";
      return false;
    }
    if (M & Bit) {
      Error = "construct '" + Tok + "' listed twice";
      return false;
    }
    M |= Bit;
    Pos = Comma + 1;
  }
  if (!(M & constructs::Finish)) {
    Error = "the construct list must include 'finish' (the fallback repair)";
    return false;
  }
  Mask = M;
  return true;
}

std::string tdr::formatConstructMask(unsigned Mask) {
  std::string Out;
  auto Add = [&](const char *Name) {
    if (!Out.empty())
      Out += ',';
    Out += Name;
  };
  if (Mask & constructs::Finish)
    Add("finish");
  if (Mask & constructs::Future)
    Add("future");
  if (Mask & constructs::Isolated)
    Add("isolated");
  return Out;
}

//===----------------------------------------------------------------------===//
// Chooser
//===----------------------------------------------------------------------===//

namespace {

/// Rank used for tie-breaking: prefer the paper's finish repair, then
/// force (still a deterministic ordering), then isolated.
unsigned rank(RepairConstruct C) { return static_cast<unsigned>(C); }

struct AssignmentEval {
  uint64_t Cost = Infinite;
  std::vector<std::pair<uint32_t, uint32_t>> FinishRanges;
  std::vector<std::pair<uint32_t, uint32_t>> ForceEdges;
};

AssignmentEval evalAssignment(const PlacementProblem &Problem,
                              const std::vector<RepairConstruct> &Assign,
                              const std::vector<EdgeCandidate> &Cands,
                              const SolveFinishFn &SolveFinish) {
  AssignmentEval Out;
  std::vector<std::pair<uint32_t, uint32_t>> FinishEdges;
  uint64_t Penalty = 0;
  for (size_t E = 0; E != Problem.Edges.size(); ++E) {
    switch (Assign[E]) {
    case RepairConstruct::Finish:
      FinishEdges.push_back(Problem.Edges[E]);
      break;
    case RepairConstruct::ForceFuture:
      Out.ForceEdges.push_back(Problem.Edges[E]);
      break;
    case RepairConstruct::Isolated:
      Penalty += Cands[E].IsolatedPenalty;
      break;
    }
  }
  if (!FinishEdges.empty()) {
    PlacementResult DP = SolveFinish(FinishEdges);
    if (!DP.Feasible)
      return Out; // Infinite
    Out.FinishRanges = std::move(DP.Finishes);
  }
  uint64_t Base =
      evalConstructCost(Problem, Out.FinishRanges, Out.ForceEdges);
  Out.Cost = Base > Infinite - Penalty ? Infinite : Base + Penalty;
  return Out;
}

} // namespace

GroupPlan tdr::planConstructs(const PlacementProblem &Problem, unsigned Mask,
                              const std::vector<EdgeCandidate> &Candidates,
                              const SolveFinishFn &SolveFinish) {
  obs::ScopedSpan Span(obs::phase::PlacementChoose);
  obs::counter("choose.runs").inc();

  GroupPlan Plan;
  const size_t NE = Problem.Edges.size();
  std::vector<RepairConstruct> Assign(NE, RepairConstruct::Finish);

  AssignmentEval Cur = evalAssignment(Problem, Assign, Candidates,
                                      SolveFinish);
  Plan.AllFinishCost = Cur.Cost;

  Plan.Edges.resize(NE);
  for (size_t E = 0; E != NE; ++E) {
    Plan.Edges[E].X = Problem.Edges[E].first;
    Plan.Edges[E].Y = Problem.Edges[E].second;
  }

  // Greedy descent, one pass in edge order. Every candidate evaluation is
  // a full-assignment re-cost (DP over the remaining finish edges), so the
  // comparison accounts for interactions with already-moved edges.
  for (size_t E = 0; E != NE; ++E) {
    const EdgeCandidate &C = Candidates[E];
    struct Option {
      RepairConstruct Construct;
      AssignmentEval Eval;
      bool Applicable;
      std::string Reason;
    };
    std::vector<Option> Options;
    auto Probe = [&](RepairConstruct RC, bool Applicable,
                     const std::string &Reason) {
      Option O;
      O.Construct = RC;
      O.Applicable = Applicable;
      O.Reason = Reason;
      if (Applicable) {
        RepairConstruct Saved = Assign[E];
        Assign[E] = RC;
        O.Eval = evalAssignment(Problem, Assign, Candidates, SolveFinish);
        Assign[E] = Saved;
      }
      Options.push_back(std::move(O));
    };
    // The current assignment (finish) is option 0 — reuse its evaluation.
    Options.push_back({RepairConstruct::Finish, Cur, true, ""});
    if (Mask & constructs::Future)
      Probe(RepairConstruct::ForceFuture, C.CanForce, C.ForceReason);
    if (Mask & constructs::Isolated)
      Probe(RepairConstruct::Isolated, C.CanIsolate, C.IsolateReason);

    // Pick the cheapest applicable option; ties keep the lower rank.
    size_t Best = 0;
    for (size_t O = 1; O != Options.size(); ++O) {
      if (!Options[O].Applicable)
        continue;
      uint64_t CB = Options[Best].Eval.Cost, CO = Options[O].Eval.Cost;
      if (CO < CB || (CO == CB && rank(Options[O].Construct) <
                                      rank(Options[Best].Construct)))
        Best = O;
    }
    if (Best != 0) {
      Assign[E] = Options[Best].Construct;
      Cur = Options[Best].Eval;
      obs::counter("choose.nonfinish").inc();
    }
    Plan.Edges[E].Construct = Options[Best].Construct;
    for (size_t O = 0; O != Options.size(); ++O) {
      if (O == Best)
        continue;
      ConstructAlternative Alt;
      Alt.Construct = Options[O].Construct;
      Alt.Feasible = Options[O].Applicable &&
                     Options[O].Eval.Cost != Infinite;
      Alt.Cost = Alt.Feasible ? Options[O].Eval.Cost : 0;
      Alt.Reason = Options[O].Applicable
                       ? (Alt.Feasible ? "higher or equal modeled cost"
                                       : "no realizable finish placement")
                       : Options[O].Reason;
      Plan.Edges[E].Alternatives.push_back(std::move(Alt));
    }
  }

  if (Cur.Cost == Infinite)
    return Plan; // infeasible; caller falls back to per-source wraps
  Plan.Feasible = true;
  Plan.FinishRanges = std::move(Cur.FinishRanges);
  Plan.ForceEdges = std::move(Cur.ForceEdges);
  Plan.Cost = Cur.Cost;
  return Plan;
}
