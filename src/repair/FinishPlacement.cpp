//===- FinishPlacement.cpp ------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/FinishPlacement.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace tdr;

namespace {

constexpr uint64_t Infinite = std::numeric_limits<uint64_t>::max();

/// Memoizing wrapper around the caller's validity oracle.
class ValidCache {
public:
  ValidCache(size_t N, const ValidRangeFn &Valid) : N(N), Valid(Valid) {
    Cache.assign(N * N, 0);
  }

  bool operator()(uint32_t I, uint32_t K) {
    // Single-node ranges go through the oracle too: a wrap the AST mapping
    // cannot realize (StaticPlacer::apply would reject it) must make the
    // DP report infeasible rather than hand back an unapplicable plan.
    uint8_t &Slot = Cache[I * N + K];
    if (Slot == 0)
      Slot = Valid(I, K) ? 1 : 2;
    return Slot == 1;
  }

private:
  size_t N;
  const ValidRangeFn &Valid;
  std::vector<uint8_t> Cache;
};

/// CrossMin[i][k]: the smallest edge sink y with source x in [i, k] and
/// y > k; Infinite-as-uint32 when none. succ(i..k) crosses into (k, j]
/// iff CrossMin[i][k] <= j.
class CrossingTable {
public:
  explicit CrossingTable(const PlacementProblem &P) : N(P.size()) {
    std::vector<std::vector<uint32_t>> Succ(N);
    for (auto [X, Y] : P.Edges)
      Succ[X].push_back(Y);
    for (auto &S : Succ)
      std::sort(S.begin(), S.end());

    Table.assign(N * N, NoEdge);
    for (uint32_t K = 0; K != N; ++K) {
      uint32_t RunningMin = NoEdge;
      for (int64_t I = K; I >= 0; --I) {
        // Smallest successor of node I strictly greater than K.
        const auto &S = Succ[static_cast<size_t>(I)];
        auto It = std::upper_bound(S.begin(), S.end(), K);
        if (It != S.end())
          RunningMin = std::min(RunningMin, *It);
        Table[static_cast<size_t>(I) * N + K] = RunningMin;
      }
    }
  }

  bool crosses(uint32_t I, uint32_t K, uint32_t J) const {
    return Table[static_cast<size_t>(I) * N + K] <= J;
  }

private:
  static constexpr uint32_t NoEdge = std::numeric_limits<uint32_t>::max();
  size_t N;
  std::vector<uint32_t> Table;
};

} // namespace

PlacementResult tdr::placeFinishes(const PlacementProblem &Problem,
                                   const ValidRangeFn &Valid) {
  obs::ScopedSpan Span(obs::phase::PlacementDp);
  obs::counter("dp.runs").inc();
  size_t N = Problem.size();
  PlacementResult Result;
  if (N == 0) {
    Result.Feasible = true;
    return Result;
  }

  CrossingTable Cross(Problem);
  ValidCache IsValid(N, Valid);
  uint64_t Subproblems = N; // the N base cases below
  uint64_t PartitionsTried = 0;

  // Opt[i][j]: minimal completion time of block i..j.
  // Est[i][j]: earliest start of the node following block i..j, relative
  //            to the block's start, under the chosen structure.
  // Partition[i][j]: chosen k; NeedsFinish[i][j]: finish around i..k?
  auto Idx = [N](size_t I, size_t J) { return I * N + J; };
  std::vector<uint64_t> Opt(N * N, Infinite), Est(N * N, 0);
  std::vector<uint32_t> Partition(N * N, 0);
  std::vector<uint8_t> NeedsFinish(N * N, 0);

  for (size_t I = 0; I != N; ++I) {
    Opt[Idx(I, I)] = Problem.Times[I];
    Est[Idx(I, I)] = Problem.IsAsync[I] ? 0 : Problem.Times[I];
  }

  for (size_t S = 2; S <= N; ++S) {
    for (size_t I = 0; I + S - 1 < N; ++I) {
      size_t J = I + S - 1;
      ++Subproblems;
      PartitionsTried += J - I;
      uint64_t CMin = Infinite;
      uint64_t EBest = Infinite;
      uint32_t PBest = 0;
      bool FBest = false;
      for (size_t K = I; K != J; ++K) {
        uint64_t OptL = Opt[Idx(I, K)];
        uint64_t OptR = Opt[Idx(K + 1, J)];
        if (OptL == Infinite || OptR == Infinite)
          continue;
        uint64_t C, E;
        bool F;
        if (!Cross.crosses(static_cast<uint32_t>(I), static_cast<uint32_t>(K),
                           static_cast<uint32_t>(J))) {
          // No dependence crosses the partition: the right part starts as
          // soon as the left part's serial prefix allows.
          C = std::max(OptL, Est[Idx(I, K)] + OptR);
          F = false;
          E = Est[Idx(I, K)] + Est[Idx(K + 1, J)];
        } else if (IsValid(static_cast<uint32_t>(I),
                           static_cast<uint32_t>(K))) {
          // Dependences cross: a finish around i..k serializes the parts.
          C = OptL + OptR;
          F = true;
          E = OptL + Est[Idx(K + 1, J)];
        } else {
          continue;
        }
        if (C < CMin || (C == CMin && E < EBest)) {
          CMin = C;
          EBest = E;
          PBest = static_cast<uint32_t>(K);
          FBest = F;
        }
      }
      Opt[Idx(I, J)] = CMin;
      if (CMin != Infinite) {
        Est[Idx(I, J)] = EBest;
        Partition[Idx(I, J)] = PBest;
        NeedsFinish[Idx(I, J)] = FBest;
      }
    }
  }

  obs::counter("dp.subproblems").inc(Subproblems);
  obs::counter("dp.placements_tried").inc(PartitionsTried);

  if (Opt[Idx(0, N - 1)] == Infinite)
    return Result; // infeasible under the validity oracle

  Result.Feasible = true;
  Result.Cost = Opt[Idx(0, N - 1)];

  // Algorithm 3: recover the finish set, outer ranges first (pre-order).
  struct Range {
    uint32_t Begin, End;
  };
  std::vector<Range> Work{{0, static_cast<uint32_t>(N - 1)}};
  while (!Work.empty()) {
    Range R = Work.back();
    Work.pop_back();
    if (R.Begin == R.End)
      continue;
    uint32_t P = Partition[Idx(R.Begin, R.End)];
    if (NeedsFinish[Idx(R.Begin, R.End)])
      Result.Finishes.push_back({R.Begin, P});
    // Right subproblem pushed first so traversal visits left-to-right.
    Work.push_back({P + 1, R.End});
    Work.push_back({R.Begin, P});
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Reference evaluator and brute force (testing support)
//===----------------------------------------------------------------------===//

namespace {

/// Evaluates the sequence [I, J] with the given well-nested finish ranges
/// and force join edges. Times are absolute (offsets from the whole
/// block's start) so a force edge can compare the sink's serial clock
/// against the source future's completion time across finish boundaries.
/// Returns {serialEnd, pendingCompletion}.
struct EvalResult {
  uint64_t SerialEnd;
  uint64_t Pending;
};

struct ConstructEvaluator {
  const PlacementProblem &P;
  const std::vector<std::pair<uint32_t, uint32_t>> &Finishes;
  /// Per node, the force-edge sources joined right before it starts.
  std::vector<std::vector<uint32_t>> ForcesInto;
  /// Absolute completion time per node, filled left-to-right (edges are
  /// (x, y) with x < y, so a source is always evaluated before its sink).
  std::vector<uint64_t> Done;

  ConstructEvaluator(
      const PlacementProblem &P,
      const std::vector<std::pair<uint32_t, uint32_t>> &Finishes,
      const std::vector<std::pair<uint32_t, uint32_t>> &ForceEdges)
      : P(P), Finishes(Finishes), ForcesInto(P.size()), Done(P.size(), 0) {
    for (auto [X, Y] : ForceEdges)
      ForcesInto[Y].push_back(X);
  }

  EvalResult eval(uint32_t I, uint32_t J, uint64_t Start,
                  uint32_t EnclosingBegin, uint32_t EnclosingEnd) {
    uint64_t Cur = Start, Pending = Start;
    uint32_t Pos = I;
    while (Pos <= J) {
      // The tightest finish range starting at Pos, other than the
      // enclosing range itself.
      int64_t Best = -1;
      for (size_t F = 0; F != Finishes.size(); ++F) {
        auto [S, E] = Finishes[F];
        if (S == Pos && E <= J && !(S == EnclosingBegin && E == EnclosingEnd))
          if (Best < 0 || E > Finishes[static_cast<size_t>(Best)].second)
            Best = static_cast<int64_t>(F);
      }
      if (Best >= 0) {
        auto [S, E] = Finishes[static_cast<size_t>(Best)];
        EvalResult Sub = eval(S, E, Cur, S, E);
        Cur = std::max(Sub.SerialEnd, Sub.Pending);
        Pos = E + 1;
        continue;
      }
      for (uint32_t X : ForcesInto[Pos])
        Cur = std::max(Cur, Done[X]);
      if (P.IsAsync[Pos]) {
        Done[Pos] = Cur + P.Times[Pos];
        Pending = std::max(Pending, Done[Pos]);
      } else {
        Cur += P.Times[Pos];
        Done[Pos] = Cur;
      }
      ++Pos;
    }
    return {Cur, Pending};
  }
};

} // namespace

uint64_t tdr::evalConstructCost(
    const PlacementProblem &Problem,
    const std::vector<std::pair<uint32_t, uint32_t>> &Finishes,
    const std::vector<std::pair<uint32_t, uint32_t>> &ForceEdges) {
  if (Problem.size() == 0)
    return 0;
  ConstructEvaluator Eval(Problem, Finishes, ForceEdges);
  EvalResult R = Eval.eval(0, static_cast<uint32_t>(Problem.size() - 1), 0,
                           std::numeric_limits<uint32_t>::max(),
                           std::numeric_limits<uint32_t>::max());
  return std::max(R.SerialEnd, R.Pending);
}

uint64_t tdr::evalPlacementCost(
    const PlacementProblem &Problem,
    const std::vector<std::pair<uint32_t, uint32_t>> &Finishes) {
  return evalConstructCost(Problem, Finishes, {});
}

bool tdr::placementResolvesAllEdges(
    const PlacementProblem &Problem,
    const std::vector<std::pair<uint32_t, uint32_t>> &Finishes) {
  for (auto [X, Y] : Problem.Edges) {
    bool Covered = false;
    for (auto [S, E] : Finishes)
      if (S <= X && X <= E && E < Y) {
        Covered = true;
        break;
      }
    if (!Covered)
      return false;
  }
  return true;
}

namespace {

/// Exhaustive search over the DP's decision space (all partition trees
/// with finish choices). Exponential; small n only.
struct BruteSearcher {
  const PlacementProblem &P;
  ValidCache &IsValid;
  const CrossingTable &Cross;

  struct Outcome {
    uint64_t Cost = Infinite;
    uint64_t Est = 0;
    std::vector<std::pair<uint32_t, uint32_t>> Finishes;
  };

  /// All feasible (cost, est, ranges) combinations would be exponential;
  /// instead enumerate partition choices and keep the best (cost, est)
  /// lexicographically, mirroring the DP's tie-break.
  Outcome search(uint32_t I, uint32_t J) {
    Outcome Best;
    if (I == J) {
      Best.Cost = P.Times[I];
      Best.Est = P.IsAsync[I] ? 0 : P.Times[I];
      return Best;
    }
    for (uint32_t K = I; K != J; ++K) {
      Outcome L = search(I, K);
      Outcome R = search(K + 1, J);
      if (L.Cost == Infinite || R.Cost == Infinite)
        continue;
      bool Crossing = Cross.crosses(I, K, J);
      if (!Crossing) {
        uint64_t C = std::max(L.Cost, L.Est + R.Cost);
        uint64_t E = L.Est + R.Est;
        if (C < Best.Cost || (C == Best.Cost && E < Best.Est)) {
          Best.Cost = C;
          Best.Est = E;
          Best.Finishes = L.Finishes;
          Best.Finishes.insert(Best.Finishes.end(), R.Finishes.begin(),
                               R.Finishes.end());
        }
      } else if (IsValid(I, K)) {
        uint64_t C = L.Cost + R.Cost;
        uint64_t E = L.Cost + R.Est;
        if (C < Best.Cost || (C == Best.Cost && E < Best.Est)) {
          Best.Cost = C;
          Best.Est = E;
          Best.Finishes.clear();
          Best.Finishes.push_back({I, K});
          Best.Finishes.insert(Best.Finishes.end(), L.Finishes.begin(),
                               L.Finishes.end());
          Best.Finishes.insert(Best.Finishes.end(), R.Finishes.begin(),
                               R.Finishes.end());
        }
      }
    }
    return Best;
  }
};

} // namespace

PlacementResult tdr::bruteForcePlacement(const PlacementProblem &Problem,
                                         const ValidRangeFn &Valid) {
  PlacementResult Result;
  size_t N = Problem.size();
  if (N == 0) {
    Result.Feasible = true;
    return Result;
  }
  assert(N <= 12 && "brute force is exponential; small problems only");
  CrossingTable Cross(Problem);
  ValidCache IsValid(N, Valid);
  BruteSearcher B{Problem, IsValid, Cross};
  BruteSearcher::Outcome O = B.search(0, static_cast<uint32_t>(N - 1));
  if (O.Cost == Infinite)
    return Result;
  Result.Feasible = true;
  Result.Cost = O.Cost;
  Result.Finishes = std::move(O.Finishes);
  return Result;
}
