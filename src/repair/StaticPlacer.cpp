//===- StaticPlacer.cpp ---------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/StaticPlacer.h"

#include "ast/Transforms.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace tdr;

namespace {
constexpr size_t Npos = static_cast<size_t>(-1);
} // namespace

StaticPlacer::StaticPlacer(Dpst &Tree, AstContext &Ctx, Program &Prog,
                           FinishEditSink *Edits)
    : Tree(Tree), Ctx(Ctx), Prog(Prog), Edits(Edits) {
  indexProgram();
  indexTree();
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

void StaticPlacer::indexProgram() {
  Parents.clear();
  // Record, for every statement, the slot it occupies.
  struct Walker {
    StaticPlacer &SP;
    void block(BlockStmt *B) {
      for (Stmt *S : B->stmts()) {
        SP.Parents[S] = ParentSlot{B, nullptr, Edit::SlotKind::None};
        visit(S);
      }
    }
    void slot(Stmt *Child, Stmt *Owner, Edit::SlotKind K) {
      SP.Parents[Child] = ParentSlot{nullptr, Owner, K};
      visit(Child);
    }
    void visit(Stmt *S) {
      switch (S->kind()) {
      case Stmt::Kind::Block:
        block(cast<BlockStmt>(S));
        break;
      case Stmt::Kind::If: {
        auto *I = cast<IfStmt>(S);
        slot(I->thenStmt(), I, Edit::SlotKind::IfThen);
        if (I->elseStmt())
          slot(I->elseStmt(), I, Edit::SlotKind::IfElse);
        break;
      }
      case Stmt::Kind::While:
        slot(cast<WhileStmt>(S)->body(), S, Edit::SlotKind::WhileBody);
        break;
      case Stmt::Kind::For:
        slot(cast<ForStmt>(S)->body(), S, Edit::SlotKind::ForBody);
        break;
      case Stmt::Kind::Async:
        slot(cast<AsyncStmt>(S)->body(), S, Edit::SlotKind::AsyncBody);
        break;
      case Stmt::Kind::Finish:
        slot(cast<FinishStmt>(S)->body(), S, Edit::SlotKind::FinishBody);
        break;
      case Stmt::Kind::Isolated:
        // An isolated body cannot contain synchronization constructs
        // (sema), but the slot is indexed so repairs that wrapped a
        // statement keep a consistent parent map.
        slot(cast<IsolatedStmt>(S)->body(), S, Edit::SlotKind::IsolatedBody);
        break;
      case Stmt::Kind::VarDecl:
      case Stmt::Kind::Assign:
      case Stmt::Kind::Expr:
      case Stmt::Kind::Return:
      // A future's initializer is an expression (no statement slots), and
      // forasync is lowered before repair ever runs — leaves here.
      case Stmt::Kind::Future:
      case Stmt::Kind::Forasync:
        break;
      }
    }
  } W{*this};
  for (FuncDecl *F : Prog.funcs())
    W.block(F->body());
}

void StaticPlacer::indexTree() {
  BlockInstances.clear();
  StmtInstances.clear();
  std::vector<DpstNode *> Stack{Tree.root()};
  while (!Stack.empty()) {
    DpstNode *N = Stack.back();
    Stack.pop_back();
    if (N->isScope() && N->container())
      BlockInstances[N->container()].push_back(N);
    if (N->isAsync() && N->asyncStmt())
      StmtInstances[N->asyncStmt()].push_back(N);
    if (N->isFinish() && N->finishStmt())
      StmtInstances[N->finishStmt()].push_back(N);
    if (N->isFuture() && N->futureStmt())
      StmtInstances[N->futureStmt()].push_back(N);
    for (DpstNode *C : N->children())
      Stack.push_back(C);
  }
}

//===----------------------------------------------------------------------===//
// Statement lookup helpers
//===----------------------------------------------------------------------===//

namespace {
/// True when \p S lives inside \p Container, looking only through
/// synthesized finishes and the blocks they created.
bool containsThroughSynthesized(const Stmt *Container, const Stmt *S) {
  if (Container == S)
    return true;
  if (const auto *F = dyn_cast<FinishStmt>(Container); F && F->isSynthesized())
    return containsThroughSynthesized(F->body(), S);
  if (const auto *I = dyn_cast<IsolatedStmt>(Container);
      I && I->isSynthesized())
    return containsThroughSynthesized(I->body(), S);
  if (const auto *B = dyn_cast<BlockStmt>(Container)) {
    for (const Stmt *C : B->stmts())
      if (containsThroughSynthesized(C, S))
        return true;
  }
  return false;
}

/// Collects \p S and, through synthesized finishes, the statements earlier
/// edits moved under it.
void addOwners(const Stmt *S, std::unordered_set<const Stmt *> &Set) {
  Set.insert(S);
  if (const auto *F = dyn_cast<FinishStmt>(S); F && F->isSynthesized()) {
    addOwners(F->body(), Set);
    return;
  }
  if (const auto *I = dyn_cast<IsolatedStmt>(S); I && I->isSynthesized()) {
    addOwners(I->body(), Set);
    return;
  }
  if (const auto *B = dyn_cast<BlockStmt>(S))
    for (const Stmt *C : B->stmts())
      addOwners(C, Set);
}
} // namespace

size_t StaticPlacer::findStmtIndex(const BlockStmt *B, const Stmt *S) const {
  const auto &Stmts = B->stmts();
  for (size_t I = 0; I != Stmts.size(); ++I) {
    if (Stmts[I] == S)
      return I;
    if (const auto *F = dyn_cast<FinishStmt>(Stmts[I]);
        F && F->isSynthesized() && containsThroughSynthesized(F, S))
      return I;
    if (const auto *Iso = dyn_cast<IsolatedStmt>(Stmts[I]);
        Iso && Iso->isSynthesized() && containsThroughSynthesized(Iso, S))
      return I;
  }
  return Npos;
}

bool StaticPlacer::declEscapes(const BlockStmt *B, size_t First,
                               size_t Last) const {
  std::unordered_set<const VarDecl *> Decls;
  for (size_t I = First; I <= Last; ++I) {
    if (const auto *V = dyn_cast<VarDeclStmt>(B->stmts()[I]))
      Decls.insert(V->decl());
    // A future statement declares its handle in the enclosing scope;
    // wrapping it in a finish moves the declaration into the finish body
    // and strands any later force(f) (sema rejects the print).
    else if (const auto *F = dyn_cast<FutureStmt>(B->stmts()[I]))
      Decls.insert(F->decl());
  }
  if (Decls.empty())
    return false;
  bool Escapes = false;
  for (size_t I = Last + 1; I != B->stmts().size() && !Escapes; ++I)
    forEachExpr(B->stmts()[I], [&](const Expr *E) {
      if (const auto *Ref = dyn_cast<VarRefExpr>(E))
        if (Decls.count(Ref->decl()))
          Escapes = true;
    });
  return Escapes;
}

//===----------------------------------------------------------------------===//
// Insertion point (paper §5.2, bottom-up traversal)
//===----------------------------------------------------------------------===//

std::vector<StaticPlacer::InsertionPoint>
StaticPlacer::findInsertionPoints(const DpstNode *L, DpstNode *First,
                                  DpstNode *Last, const DpstNode *LeftN,
                                  const DpstNode *RightN) {
  DpstNode *P;
  size_t B, E;
  if (First == Last) {
    P = First->parent();
    B = E = First->indexInParent();
  } else {
    P = const_cast<DpstNode *>(Tree.lca(First, Last));
    const DpstNode *CB = Tree.childToward(P, First);
    const DpstNode *CE = Tree.childToward(P, Last);
    assert(CB && CE && "range endpoints must be strict descendants");
    B = CB->indexInParent();
    E = CE->indexInParent();
  }

  // The finish must separate the range from its DP neighbors: reject when
  // a neighbor lives inside a boundary subtree (the Fig. 5 condition).
  if (LeftN && Tree.isAncestorOrSelf(P->children()[B], LeftN))
    return {};
  if (RightN && Tree.isAncestorOrSelf(P->children()[E], RightN))
    return {};

  // Bottom-up (paper §5.2): collect every position up to the highest node
  // whose whole child list is covered; wrapping that node at its parent is
  // dynamically equivalent, but the AST mapping may only be expressible at
  // some of the levels, so the caller tries them highest first.
  std::vector<InsertionPoint> Points;
  Points.push_back(InsertionPoint{P, B, E});
  while (P != L && B == 0 && E + 1 == P->children().size()) {
    B = E = P->indexInParent();
    P = P->parent();
    Points.push_back(InsertionPoint{P, B, E});
  }
  return Points;
}

//===----------------------------------------------------------------------===//
// Range -> AST edit mapping
//===----------------------------------------------------------------------===//

std::optional<StaticPlacer::Edit>
StaticPlacer::mapBlockEdit(const DepGroup &G, uint32_t I, uint32_t K,
                           const InsertionPoint &IP) {
  DpstNode *P = IP.Parent;
  const BlockStmt *CB = P->container();
  assert(CB && "block edits need a container");

  const Stmt *FirstStmt = P->children()[IP.Begin]->owner();
  const Stmt *LastStmt = P->children()[IP.End]->ownerLast();
  if (!FirstStmt || !LastStmt)
    return std::nullopt;
  size_t IF = findStmtIndex(CB, FirstStmt);
  size_t IL = findStmtIndex(CB, LastStmt);
  if (IF == Npos || IL == Npos || IF > IL)
    return std::nullopt;

  // Owner set of the statement range (through synthesized finishes).
  std::unordered_set<const Stmt *> OwnerSet;
  for (size_t S = IF; S <= IL; ++S)
    addOwners(CB->stmts()[S], OwnerSet);

  // Classify P's children against the wrap and find the covered run.
  size_t CoverBegin = Npos, CoverEnd = Npos;
  const auto &Kids = P->children();
  for (size_t Idx = 0; Idx != Kids.size(); ++Idx) {
    const DpstNode *C = Kids[Idx];
    bool In1 = C->owner() && OwnerSet.count(C->owner());
    bool In2 = C->ownerLast() && OwnerSet.count(C->ownerLast());
    if (In1 != In2) {
      // A statement boundary splits this child. Steps carry no
      // synchronization structure, so they may safely stay outside the
      // finish; anything else is unmappable.
      if (!C->isStep())
        return std::nullopt;
      continue;
    }
    if (!In1)
      continue;
    if (CoverBegin == Npos)
      CoverBegin = Idx;
    else if (CoverEnd + 1 != Idx)
      return std::nullopt; // covered children must be consecutive
    CoverEnd = Idx;
  }
  if (CoverBegin == Npos || CoverBegin > IP.Begin || CoverEnd < IP.End)
    return std::nullopt;

  // The wrap's dynamic extent may exceed [Begin, End] (whole statements
  // only). That is harmless — a finish only adds joins — except that the
  // sinks of the edges this finish is meant to resolve must stay outside,
  // or those races stay inside the finish and remain unresolved.
  std::vector<const DpstNode *> ForbiddenNodes;
  for (auto [X, Y] : G.Problem.Edges)
    if (X >= I && X <= K && Y > K)
      ForbiddenNodes.push_back(G.Nodes[Y]);
  auto RangeContains = [&](size_t Lo, size_t Hi) {
    for (size_t Idx = Lo; Idx <= Hi; ++Idx)
      for (const DpstNode *F : ForbiddenNodes)
        if (Tree.isAncestorOrSelf(Kids[Idx], F))
          return true;
    return false;
  };
  if (CoverBegin < IP.Begin && RangeContains(CoverBegin, IP.Begin - 1))
    return std::nullopt;
  if (CoverEnd > IP.End && RangeContains(IP.End + 1, CoverEnd))
    return std::nullopt;

  if (declEscapes(CB, IF, IL))
    return std::nullopt;

  Edit E;
  E.Block = const_cast<BlockStmt *>(CB);
  E.FirstIdx = IF;
  E.LastIdx = IL;
  return E;
}

std::optional<StaticPlacer::Edit> StaticPlacer::deepWrapEdit(DpstNode *X) {
  const Stmt *A = X->isAsync()    ? static_cast<const Stmt *>(X->asyncStmt())
                  : X->isFuture() ? static_cast<const Stmt *>(X->futureStmt())
                                  : static_cast<const Stmt *>(X->finishStmt());
  if (!A)
    return std::nullopt;
  auto It = Parents.find(A);
  if (It == Parents.end())
    return std::nullopt;
  const ParentSlot &PS = It->second;
  Edit E;
  if (PS.Block) {
    size_t Idx = findStmtIndex(PS.Block, A);
    if (Idx == Npos)
      return std::nullopt;
    if (declEscapes(PS.Block, Idx, Idx))
      return std::nullopt;
    E.Block = PS.Block;
    E.FirstIdx = E.LastIdx = Idx;
    return E;
  }
  if (!PS.Owner)
    return std::nullopt;
  E.SlotOwner = PS.Owner;
  E.Slot = PS.Slot;
  E.Wrapped = const_cast<Stmt *>(A);
  return E;
}

std::optional<StaticPlacer::Edit>
StaticPlacer::mapRange(const DepGroup &G, uint32_t I, uint32_t K) {
  RejectReason.clear();
  DpstNode *First = G.Nodes[I];
  DpstNode *Last = G.Nodes[K];
  const DpstNode *LeftN = I > 0 ? G.Nodes[I - 1] : nullptr;
  const DpstNode *RightN = K + 1 < G.Nodes.size() ? G.Nodes[K + 1] : nullptr;

  std::vector<InsertionPoint> Points =
      findInsertionPoints(G.Lca, First, Last, LeftN, RightN);
  for (auto It = Points.rbegin(), End = Points.rend(); It != End; ++It) {
    const InsertionPoint &IP = *It;
    DpstNode *P = IP.Parent;
    if (P->isScope() && P->container()) {
      if (auto E = mapBlockEdit(G, I, K, IP))
        return E;
    } else if ((P->isAsync() || P->isFinish()) && IP.Begin == 0 &&
               IP.End + 1 == P->children().size()) {
      // Wrap the whole body of the async/finish statement.
      const Stmt *OwnerStmt =
          P->isAsync() ? static_cast<const Stmt *>(P->asyncStmt())
                       : static_cast<const Stmt *>(P->finishStmt());
      if (OwnerStmt) {
        Edit E;
        E.SlotOwner = const_cast<Stmt *>(OwnerStmt);
        E.Slot = P->isAsync() ? Edit::SlotKind::AsyncBody
                              : Edit::SlotKind::FinishBody;
        E.Wrapped = P->isAsync()
                        ? cast<AsyncStmt>(E.SlotOwner)->body()
                        : cast<FinishStmt>(E.SlotOwner)->body();
        return E;
      }
    }
  }

  // Single async/future/finish nodes can always be repaired by wrapping
  // their own statement (a finish around a future joins it at finish exit),
  // which keeps the DP feasible.
  if (I == K && (First->isTaskNode() || First->isFinish())) {
    if (auto E = deepWrapEdit(First))
      return E;
  }
  RejectReason =
      Points.empty()
          ? "a DP neighbor shares a boundary subtree of the range "
            "(Fig. 5 scoping condition)"
          : "no AST edit maps this range (statement split across "
            "instances, swallowed race sink, or escaping declaration)";
  return std::nullopt;
}

bool StaticPlacer::isValidRange(const DepGroup &G, uint32_t I, uint32_t K) {
  return mapRange(G, I, K).has_value();
}

//===----------------------------------------------------------------------===//
// Applying edits
//===----------------------------------------------------------------------===//

FinishStmt *StaticPlacer::applyEdit(const Edit &E) {
  if (E.Block) {
    std::vector<Stmt *> Moved(E.Block->stmts().begin() +
                                  static_cast<ptrdiff_t>(E.FirstIdx),
                              E.Block->stmts().begin() +
                                  static_cast<ptrdiff_t>(E.LastIdx) + 1);
    FinishStmt *NF = wrapInFinish(Ctx, E.Block, E.FirstIdx, E.LastIdx, Edits);
    // Keep the parent map usable for later deep wraps.
    if (Moved.size() == 1) {
      Parents[Moved[0]] =
          ParentSlot{nullptr, NF, Edit::SlotKind::FinishBody};
    } else {
      auto *Inner = cast<BlockStmt>(NF->body());
      for (Stmt *S : Moved)
        Parents[S] = ParentSlot{Inner, nullptr, Edit::SlotKind::None};
    }
    Parents[NF] = ParentSlot{E.Block, nullptr, Edit::SlotKind::None};
    return NF;
  }

  auto *NF = Ctx.createStmt<FinishStmt>(E.Wrapped, E.Wrapped->loc());
  NF->setSynthesized(true);
  switch (E.Slot) {
  case Edit::SlotKind::IfThen:
    cast<IfStmt>(E.SlotOwner)->setThenStmt(NF);
    break;
  case Edit::SlotKind::IfElse:
    cast<IfStmt>(E.SlotOwner)->setElseStmt(NF);
    break;
  case Edit::SlotKind::WhileBody:
    cast<WhileStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::ForBody:
    cast<ForStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::AsyncBody:
    cast<AsyncStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::FinishBody:
    cast<FinishStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::IsolatedBody:
    assert(false && "sema bans finish inside isolated; mapRange never "
                    "produces this edit");
    return nullptr;
  case Edit::SlotKind::None:
    assert(false && "slot edit without a slot");
    return nullptr;
  }
  Parents[E.Wrapped] = ParentSlot{nullptr, NF, Edit::SlotKind::FinishBody};
  Parents[NF] = ParentSlot{nullptr, E.SlotOwner, E.Slot};
  if (Edits)
    Edits->noteSlotWrap(NF, E.SlotOwner, E.Wrapped);
  return NF;
}

unsigned StaticPlacer::replicate(const Edit &E, FinishStmt *NewFinish) {
  unsigned Count = 0;

  if (E.Block) {
    // The wrapped statements moved under NewFinish; recover them for the
    // coverage predicate.
    std::unordered_set<const Stmt *> OwnerSet;
    addOwners(NewFinish, OwnerSet);
    OwnerSet.erase(NewFinish); // owners predate the edit

    auto It = BlockInstances.find(E.Block);
    if (It == BlockInstances.end())
      return 0;
    for (DpstNode *Q : It->second) {
      const auto &Kids = Q->children();
      size_t Lo = Npos, Hi = Npos;
      for (size_t Idx = 0; Idx != Kids.size(); ++Idx) {
        const DpstNode *C = Kids[Idx];
        bool In1 = C->owner() && OwnerSet.count(C->owner());
        bool In2 = C->ownerLast() && OwnerSet.count(C->ownerLast());
        if (!(In1 && In2))
          continue;
        if (Lo == Npos)
          Lo = Idx;
        Hi = Idx;
      }
      if (Lo == Npos)
        continue;
      DpstNode *F = Tree.insertFinish(Q, Lo, Hi, NewFinish);
      StmtInstances[NewFinish].push_back(F);
      ++Count;
    }
    return Count;
  }

  // Slot edits.
  if (E.Slot == Edit::SlotKind::AsyncBody ||
      E.Slot == Edit::SlotKind::FinishBody) {
    // Wrapping the whole body of an async/finish: at every instance of the
    // owner, the new finish adopts all children.
    auto It = StmtInstances.find(E.SlotOwner);
    if (It == StmtInstances.end())
      return 0;
    for (DpstNode *X : It->second) {
      if (X->children().empty())
        continue;
      DpstNode *F =
          Tree.insertFinish(X, 0, X->children().size() - 1, NewFinish);
      StmtInstances[NewFinish].push_back(F);
      ++Count;
    }
    return Count;
  }

  // Deep wrap of an async/finish statement in a structured body slot: wrap
  // each dynamic instance of the statement individually.
  auto It = StmtInstances.find(E.Wrapped);
  if (It == StmtInstances.end())
    return 0;
  for (DpstNode *X : It->second) {
    DpstNode *F = Tree.insertFinish(X->parent(), X->indexInParent(),
                                    X->indexInParent(), NewFinish);
    StmtInstances[NewFinish].push_back(F);
    ++Count;
  }
  return Count;
}

//===----------------------------------------------------------------------===//
// Force-of-future repairs
//===----------------------------------------------------------------------===//

std::optional<StaticPlacer::ForceEdit>
StaticPlacer::mapForce(const DepGroup &G, uint32_t X, uint32_t Y) {
  RejectReason.clear();
  DpstNode *FX = G.Nodes[X];
  DpstNode *NY = G.Nodes[Y];
  if (!FX->isFuture() || !FX->futureStmt()) {
    RejectReason = "edge source is not a future";
    return std::nullopt;
  }
  const FutureStmt *FS = FX->futureStmt();
  if (!FS->decl()) {
    RejectReason = "future handle is unbound";
    return std::nullopt;
  }
  // The force must name the future's handle, so it can only be inserted
  // in the statement list that declares it: the container of the deepest
  // common position of the future and the sink.
  const DpstNode *L = Tree.lca(FX, NY);
  const BlockStmt *B = L->container();
  if (!B) {
    RejectReason = "future and sink share no statement list";
    return std::nullopt;
  }
  size_t FutIdx = findStmtIndex(B, FS);
  const DpstNode *SnkChild = Tree.childToward(L, NY);
  const Stmt *SinkStmt = SnkChild ? SnkChild->owner() : nullptr;
  if (!SinkStmt) {
    RejectReason = "sink has no covering statement in the future's block";
    return std::nullopt;
  }
  size_t SnkIdx = findStmtIndex(B, SinkStmt);
  if (FutIdx == Npos || SnkIdx == Npos) {
    RejectReason = "future and sink do not share a block";
    return std::nullopt;
  }
  if (FutIdx >= SnkIdx) {
    RejectReason = "sink statement does not follow the future declaration";
    return std::nullopt;
  }
  ForceEdit FE;
  FE.Block = const_cast<BlockStmt *>(B);
  FE.InsertIdx = SnkIdx;
  FE.Future = FS;
  FE.SinkStmt = SinkStmt;
  return FE;
}

bool StaticPlacer::canForce(const DepGroup &G, uint32_t X, uint32_t Y) {
  return mapForce(G, X, Y).has_value();
}

std::optional<AppliedRepair> StaticPlacer::applyForce(const DepGroup &G,
                                                      uint32_t X,
                                                      uint32_t Y) {
  auto FE = mapForce(G, X, Y);
  if (!FE)
    return std::nullopt;

  // Synthesize `force(f);` with sema-level invariants established by
  // hand: the callee is the Force builtin and the handle reference binds
  // to the future's declaration.
  SourceLoc Loc = FE->SinkStmt->loc();
  auto *Ref = Ctx.createExpr<VarRefExpr>(FE->Future->name(), Loc);
  Ref->setDecl(FE->Future->decl());
  Ref->setType(FE->Future->decl()->type());
  auto *Call =
      Ctx.createExpr<CallExpr>("force", std::vector<Expr *>{Ref}, Loc);
  Call->setBuiltin(Builtin::Force);
  if (FE->Future->decl()->type())
    Call->setType(FE->Future->decl()->type()->elem());
  auto *ES = Ctx.createStmt<ExprStmt>(Call, Loc);
  FE->Block->stmts().insert(FE->Block->stmts().begin() +
                                static_cast<ptrdiff_t>(FE->InsertIdx),
                            ES);
  Parents[ES] = ParentSlot{FE->Block, nullptr, Edit::SlotKind::None};

  AppliedRepair R;
  R.Construct = RepairConstruct::ForceFuture;
  R.AnchorLoc = FE->SinkStmt->loc();
  auto It = BlockInstances.find(FE->Block);
  R.DynamicInstances =
      It != BlockInstances.end()
          ? static_cast<unsigned>(It->second.size())
          : 1;
  R.InvalidatesTrace = true;
  return R;
}

//===----------------------------------------------------------------------===//
// Isolated repairs
//===----------------------------------------------------------------------===//

std::optional<StaticPlacer::IsolatedEdit>
StaticPlacer::mapIsolated(const DepGroup &G, uint32_t X, uint32_t Y) {
  RejectReason.clear();
  IsolatedEdit Edit;
  std::unordered_set<const Stmt *> Seen;
  bool AnyRace = false;
  for (size_t R = 0; R != G.Races.size(); ++R) {
    if (G.RaceIdx[R] != std::make_pair(X, Y))
      continue;
    AnyRace = true;
    for (const DpstNode *StepN : {G.Races[R].Src, G.Races[R].Snk}) {
      const Stmt *S = StepN->owner();
      if (!S || S != StepN->ownerLast()) {
        RejectReason = "racing step spans more than one statement";
        return std::nullopt;
      }
      if (IsolatedWrapped.count(S) || Seen.count(S))
        continue;
      if (S->kind() != Stmt::Kind::Assign && S->kind() != Stmt::Kind::Expr) {
        RejectReason =
            "racing statement is not a simple assignment or call";
        return std::nullopt;
      }
      bool BadExpr = false;
      forEachExpr(S, [&](const Expr *E) {
        if (const auto *C = dyn_cast<CallExpr>(E))
          if (C->callee() || C->builtin() == Builtin::Force)
            BadExpr = true;
      });
      if (BadExpr) {
        RejectReason = "racing statement calls a function (sema forbids "
                       "synchronization inside isolated)";
        return std::nullopt;
      }
      auto It = Parents.find(S);
      if (It == Parents.end() || !It->second.Block) {
        RejectReason =
            "racing statement does not sit directly in a block";
        return std::nullopt;
      }
      BlockStmt *B = It->second.Block;
      size_t Idx = Npos;
      for (size_t I = 0; I != B->stmts().size(); ++I)
        if (B->stmts()[I] == S)
          Idx = I;
      if (Idx == Npos) {
        RejectReason = "racing statement moved under an earlier edit";
        return std::nullopt;
      }
      Seen.insert(S);
      Edit.Sites.push_back({B, Idx, const_cast<Stmt *>(S)});
    }
  }
  if (!AnyRace) {
    RejectReason = "edge carries no race with step-level witnesses";
    return std::nullopt;
  }
  std::sort(Edit.Sites.begin(), Edit.Sites.end(),
            [](const IsolatedEdit::Site &A, const IsolatedEdit::Site &B) {
              return A.Target->id() < B.Target->id();
            });
  return Edit;
}

bool StaticPlacer::canIsolate(const DepGroup &G, uint32_t X, uint32_t Y) {
  return mapIsolated(G, X, Y).has_value();
}

std::optional<AppliedRepair>
StaticPlacer::applyIsolated(const DepGroup &G, uint32_t X, uint32_t Y) {
  auto IE = mapIsolated(G, X, Y);
  if (!IE)
    return std::nullopt;

  AppliedRepair R;
  R.Construct = RepairConstruct::Isolated;
  R.InvalidatesTrace = true;
  for (const IsolatedEdit::Site &Site : IE->Sites) {
    IsolatedStmt *Iso = wrapInIsolated(Ctx, Site.Block, Site.Index);
    Parents[Iso] = ParentSlot{Site.Block, nullptr, Edit::SlotKind::None};
    Parents[Site.Target] =
        ParentSlot{nullptr, Iso, Edit::SlotKind::IsolatedBody};
    IsolatedWrapped.insert(Site.Target);
    auto It = BlockInstances.find(Site.Block);
    R.DynamicInstances +=
        It != BlockInstances.end()
            ? static_cast<unsigned>(It->second.size())
            : 1;
  }
  if (!IE->Sites.empty())
    R.AnchorLoc = IE->Sites.front().Target->loc();
  else if (!G.Races.empty() && G.Races.front().Src->owner())
    R.AnchorLoc = G.Races.front().Src->owner()->loc();
  return R;
}

uint64_t StaticPlacer::isolatedPenalty(const DepGroup &G, uint32_t X,
                                       uint32_t Y) const {
  uint64_t Penalty = 0;
  for (size_t R = 0; R != G.Races.size(); ++R) {
    if (G.RaceIdx[R] != std::make_pair(X, Y))
      continue;
    uint64_t SrcW = G.Races[R].Src->weight();
    uint64_t SnkW = G.Races[R].Snk->weight();
    Penalty += std::max<uint64_t>(1, std::min(SrcW, SnkW));
  }
  return Penalty;
}

std::optional<AppliedFinish> StaticPlacer::apply(const DepGroup &G,
                                                 uint32_t I, uint32_t K) {
  auto E = mapRange(G, I, K);
  if (!E)
    return std::nullopt;

  AppliedFinish Result;
  if (E->Block)
    Result.AnchorLoc = E->Block->stmts()[E->FirstIdx]->loc();
  else
    Result.AnchorLoc = E->Wrapped->loc();

  FinishStmt *NF = applyEdit(*E);
  if (!NF)
    return std::nullopt;
  Result.Stmt = NF;
  Result.DynamicInstances = replicate(*E, NF);
  Applied.push_back(Result);
  return Result;
}
