//===- StaticPlacer.cpp ---------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "repair/StaticPlacer.h"

#include "ast/Transforms.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace tdr;

namespace {
constexpr size_t Npos = static_cast<size_t>(-1);
} // namespace

StaticPlacer::StaticPlacer(Dpst &Tree, AstContext &Ctx, Program &Prog,
                           FinishEditSink *Edits)
    : Tree(Tree), Ctx(Ctx), Prog(Prog), Edits(Edits) {
  indexProgram();
  indexTree();
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

void StaticPlacer::indexProgram() {
  Parents.clear();
  // Record, for every statement, the slot it occupies.
  struct Walker {
    StaticPlacer &SP;
    void block(BlockStmt *B) {
      for (Stmt *S : B->stmts()) {
        SP.Parents[S] = ParentSlot{B, nullptr, Edit::SlotKind::None};
        visit(S);
      }
    }
    void slot(Stmt *Child, Stmt *Owner, Edit::SlotKind K) {
      SP.Parents[Child] = ParentSlot{nullptr, Owner, K};
      visit(Child);
    }
    void visit(Stmt *S) {
      switch (S->kind()) {
      case Stmt::Kind::Block:
        block(cast<BlockStmt>(S));
        break;
      case Stmt::Kind::If: {
        auto *I = cast<IfStmt>(S);
        slot(I->thenStmt(), I, Edit::SlotKind::IfThen);
        if (I->elseStmt())
          slot(I->elseStmt(), I, Edit::SlotKind::IfElse);
        break;
      }
      case Stmt::Kind::While:
        slot(cast<WhileStmt>(S)->body(), S, Edit::SlotKind::WhileBody);
        break;
      case Stmt::Kind::For:
        slot(cast<ForStmt>(S)->body(), S, Edit::SlotKind::ForBody);
        break;
      case Stmt::Kind::Async:
        slot(cast<AsyncStmt>(S)->body(), S, Edit::SlotKind::AsyncBody);
        break;
      case Stmt::Kind::Finish:
        slot(cast<FinishStmt>(S)->body(), S, Edit::SlotKind::FinishBody);
        break;
      case Stmt::Kind::VarDecl:
      case Stmt::Kind::Assign:
      case Stmt::Kind::Expr:
      case Stmt::Kind::Return:
        break;
      }
    }
  } W{*this};
  for (FuncDecl *F : Prog.funcs())
    W.block(F->body());
}

void StaticPlacer::indexTree() {
  BlockInstances.clear();
  StmtInstances.clear();
  std::vector<DpstNode *> Stack{Tree.root()};
  while (!Stack.empty()) {
    DpstNode *N = Stack.back();
    Stack.pop_back();
    if (N->isScope() && N->container())
      BlockInstances[N->container()].push_back(N);
    if (N->isAsync() && N->asyncStmt())
      StmtInstances[N->asyncStmt()].push_back(N);
    if (N->isFinish() && N->finishStmt())
      StmtInstances[N->finishStmt()].push_back(N);
    for (DpstNode *C : N->children())
      Stack.push_back(C);
  }
}

//===----------------------------------------------------------------------===//
// Statement lookup helpers
//===----------------------------------------------------------------------===//

namespace {
/// True when \p S lives inside \p Container, looking only through
/// synthesized finishes and the blocks they created.
bool containsThroughSynthesized(const Stmt *Container, const Stmt *S) {
  if (Container == S)
    return true;
  if (const auto *F = dyn_cast<FinishStmt>(Container); F && F->isSynthesized())
    return containsThroughSynthesized(F->body(), S);
  if (const auto *B = dyn_cast<BlockStmt>(Container)) {
    for (const Stmt *C : B->stmts())
      if (containsThroughSynthesized(C, S))
        return true;
  }
  return false;
}

/// Collects \p S and, through synthesized finishes, the statements earlier
/// edits moved under it.
void addOwners(const Stmt *S, std::unordered_set<const Stmt *> &Set) {
  Set.insert(S);
  if (const auto *F = dyn_cast<FinishStmt>(S); F && F->isSynthesized()) {
    addOwners(F->body(), Set);
    return;
  }
  if (const auto *B = dyn_cast<BlockStmt>(S))
    for (const Stmt *C : B->stmts())
      addOwners(C, Set);
}
} // namespace

size_t StaticPlacer::findStmtIndex(const BlockStmt *B, const Stmt *S) const {
  const auto &Stmts = B->stmts();
  for (size_t I = 0; I != Stmts.size(); ++I) {
    if (Stmts[I] == S)
      return I;
    if (const auto *F = dyn_cast<FinishStmt>(Stmts[I]);
        F && F->isSynthesized() && containsThroughSynthesized(F, S))
      return I;
  }
  return Npos;
}

bool StaticPlacer::declEscapes(const BlockStmt *B, size_t First,
                               size_t Last) const {
  std::unordered_set<const VarDecl *> Decls;
  for (size_t I = First; I <= Last; ++I)
    if (const auto *V = dyn_cast<VarDeclStmt>(B->stmts()[I]))
      Decls.insert(V->decl());
  if (Decls.empty())
    return false;
  bool Escapes = false;
  for (size_t I = Last + 1; I != B->stmts().size() && !Escapes; ++I)
    forEachExpr(B->stmts()[I], [&](const Expr *E) {
      if (const auto *Ref = dyn_cast<VarRefExpr>(E))
        if (Decls.count(Ref->decl()))
          Escapes = true;
    });
  return Escapes;
}

//===----------------------------------------------------------------------===//
// Insertion point (paper §5.2, bottom-up traversal)
//===----------------------------------------------------------------------===//

std::vector<StaticPlacer::InsertionPoint>
StaticPlacer::findInsertionPoints(const DpstNode *L, DpstNode *First,
                                  DpstNode *Last, const DpstNode *LeftN,
                                  const DpstNode *RightN) {
  DpstNode *P;
  size_t B, E;
  if (First == Last) {
    P = First->parent();
    B = E = First->indexInParent();
  } else {
    P = const_cast<DpstNode *>(Tree.lca(First, Last));
    const DpstNode *CB = Tree.childToward(P, First);
    const DpstNode *CE = Tree.childToward(P, Last);
    assert(CB && CE && "range endpoints must be strict descendants");
    B = CB->indexInParent();
    E = CE->indexInParent();
  }

  // The finish must separate the range from its DP neighbors: reject when
  // a neighbor lives inside a boundary subtree (the Fig. 5 condition).
  if (LeftN && Tree.isAncestorOrSelf(P->children()[B], LeftN))
    return {};
  if (RightN && Tree.isAncestorOrSelf(P->children()[E], RightN))
    return {};

  // Bottom-up (paper §5.2): collect every position up to the highest node
  // whose whole child list is covered; wrapping that node at its parent is
  // dynamically equivalent, but the AST mapping may only be expressible at
  // some of the levels, so the caller tries them highest first.
  std::vector<InsertionPoint> Points;
  Points.push_back(InsertionPoint{P, B, E});
  while (P != L && B == 0 && E + 1 == P->children().size()) {
    B = E = P->indexInParent();
    P = P->parent();
    Points.push_back(InsertionPoint{P, B, E});
  }
  return Points;
}

//===----------------------------------------------------------------------===//
// Range -> AST edit mapping
//===----------------------------------------------------------------------===//

std::optional<StaticPlacer::Edit>
StaticPlacer::mapBlockEdit(const DepGroup &G, uint32_t I, uint32_t K,
                           const InsertionPoint &IP) {
  DpstNode *P = IP.Parent;
  const BlockStmt *CB = P->container();
  assert(CB && "block edits need a container");

  const Stmt *FirstStmt = P->children()[IP.Begin]->owner();
  const Stmt *LastStmt = P->children()[IP.End]->ownerLast();
  if (!FirstStmt || !LastStmt)
    return std::nullopt;
  size_t IF = findStmtIndex(CB, FirstStmt);
  size_t IL = findStmtIndex(CB, LastStmt);
  if (IF == Npos || IL == Npos || IF > IL)
    return std::nullopt;

  // Owner set of the statement range (through synthesized finishes).
  std::unordered_set<const Stmt *> OwnerSet;
  for (size_t S = IF; S <= IL; ++S)
    addOwners(CB->stmts()[S], OwnerSet);

  // Classify P's children against the wrap and find the covered run.
  size_t CoverBegin = Npos, CoverEnd = Npos;
  const auto &Kids = P->children();
  for (size_t Idx = 0; Idx != Kids.size(); ++Idx) {
    const DpstNode *C = Kids[Idx];
    bool In1 = C->owner() && OwnerSet.count(C->owner());
    bool In2 = C->ownerLast() && OwnerSet.count(C->ownerLast());
    if (In1 != In2) {
      // A statement boundary splits this child. Steps carry no
      // synchronization structure, so they may safely stay outside the
      // finish; anything else is unmappable.
      if (!C->isStep())
        return std::nullopt;
      continue;
    }
    if (!In1)
      continue;
    if (CoverBegin == Npos)
      CoverBegin = Idx;
    else if (CoverEnd + 1 != Idx)
      return std::nullopt; // covered children must be consecutive
    CoverEnd = Idx;
  }
  if (CoverBegin == Npos || CoverBegin > IP.Begin || CoverEnd < IP.End)
    return std::nullopt;

  // The wrap's dynamic extent may exceed [Begin, End] (whole statements
  // only). That is harmless — a finish only adds joins — except that the
  // sinks of the edges this finish is meant to resolve must stay outside,
  // or those races stay inside the finish and remain unresolved.
  std::vector<const DpstNode *> ForbiddenNodes;
  for (auto [X, Y] : G.Problem.Edges)
    if (X >= I && X <= K && Y > K)
      ForbiddenNodes.push_back(G.Nodes[Y]);
  auto RangeContains = [&](size_t Lo, size_t Hi) {
    for (size_t Idx = Lo; Idx <= Hi; ++Idx)
      for (const DpstNode *F : ForbiddenNodes)
        if (Tree.isAncestorOrSelf(Kids[Idx], F))
          return true;
    return false;
  };
  if (CoverBegin < IP.Begin && RangeContains(CoverBegin, IP.Begin - 1))
    return std::nullopt;
  if (CoverEnd > IP.End && RangeContains(IP.End + 1, CoverEnd))
    return std::nullopt;

  if (declEscapes(CB, IF, IL))
    return std::nullopt;

  Edit E;
  E.Block = const_cast<BlockStmt *>(CB);
  E.FirstIdx = IF;
  E.LastIdx = IL;
  return E;
}

std::optional<StaticPlacer::Edit> StaticPlacer::deepWrapEdit(DpstNode *X) {
  const Stmt *A = X->isAsync() ? static_cast<const Stmt *>(X->asyncStmt())
                               : static_cast<const Stmt *>(X->finishStmt());
  if (!A)
    return std::nullopt;
  auto It = Parents.find(A);
  if (It == Parents.end())
    return std::nullopt;
  const ParentSlot &PS = It->second;
  Edit E;
  if (PS.Block) {
    size_t Idx = findStmtIndex(PS.Block, A);
    if (Idx == Npos)
      return std::nullopt;
    E.Block = PS.Block;
    E.FirstIdx = E.LastIdx = Idx;
    return E;
  }
  if (!PS.Owner)
    return std::nullopt;
  E.SlotOwner = PS.Owner;
  E.Slot = PS.Slot;
  E.Wrapped = const_cast<Stmt *>(A);
  return E;
}

std::optional<StaticPlacer::Edit>
StaticPlacer::mapRange(const DepGroup &G, uint32_t I, uint32_t K) {
  RejectReason.clear();
  DpstNode *First = G.Nodes[I];
  DpstNode *Last = G.Nodes[K];
  const DpstNode *LeftN = I > 0 ? G.Nodes[I - 1] : nullptr;
  const DpstNode *RightN = K + 1 < G.Nodes.size() ? G.Nodes[K + 1] : nullptr;

  std::vector<InsertionPoint> Points =
      findInsertionPoints(G.Lca, First, Last, LeftN, RightN);
  for (auto It = Points.rbegin(), End = Points.rend(); It != End; ++It) {
    const InsertionPoint &IP = *It;
    DpstNode *P = IP.Parent;
    if (P->isScope() && P->container()) {
      if (auto E = mapBlockEdit(G, I, K, IP))
        return E;
    } else if ((P->isAsync() || P->isFinish()) && IP.Begin == 0 &&
               IP.End + 1 == P->children().size()) {
      // Wrap the whole body of the async/finish statement.
      const Stmt *OwnerStmt =
          P->isAsync() ? static_cast<const Stmt *>(P->asyncStmt())
                       : static_cast<const Stmt *>(P->finishStmt());
      if (OwnerStmt) {
        Edit E;
        E.SlotOwner = const_cast<Stmt *>(OwnerStmt);
        E.Slot = P->isAsync() ? Edit::SlotKind::AsyncBody
                              : Edit::SlotKind::FinishBody;
        E.Wrapped = P->isAsync()
                        ? cast<AsyncStmt>(E.SlotOwner)->body()
                        : cast<FinishStmt>(E.SlotOwner)->body();
        return E;
      }
    }
  }

  // Single async/finish nodes can always be repaired by wrapping their own
  // statement, which keeps the DP feasible.
  if (I == K && (First->isAsync() || First->isFinish())) {
    if (auto E = deepWrapEdit(First))
      return E;
  }
  RejectReason =
      Points.empty()
          ? "a DP neighbor shares a boundary subtree of the range "
            "(Fig. 5 scoping condition)"
          : "no AST edit maps this range (statement split across "
            "instances, swallowed race sink, or escaping declaration)";
  return std::nullopt;
}

bool StaticPlacer::isValidRange(const DepGroup &G, uint32_t I, uint32_t K) {
  return mapRange(G, I, K).has_value();
}

//===----------------------------------------------------------------------===//
// Applying edits
//===----------------------------------------------------------------------===//

FinishStmt *StaticPlacer::applyEdit(const Edit &E) {
  if (E.Block) {
    std::vector<Stmt *> Moved(E.Block->stmts().begin() +
                                  static_cast<ptrdiff_t>(E.FirstIdx),
                              E.Block->stmts().begin() +
                                  static_cast<ptrdiff_t>(E.LastIdx) + 1);
    FinishStmt *NF = wrapInFinish(Ctx, E.Block, E.FirstIdx, E.LastIdx, Edits);
    // Keep the parent map usable for later deep wraps.
    if (Moved.size() == 1) {
      Parents[Moved[0]] =
          ParentSlot{nullptr, NF, Edit::SlotKind::FinishBody};
    } else {
      auto *Inner = cast<BlockStmt>(NF->body());
      for (Stmt *S : Moved)
        Parents[S] = ParentSlot{Inner, nullptr, Edit::SlotKind::None};
    }
    Parents[NF] = ParentSlot{E.Block, nullptr, Edit::SlotKind::None};
    return NF;
  }

  auto *NF = Ctx.createStmt<FinishStmt>(E.Wrapped, E.Wrapped->loc());
  NF->setSynthesized(true);
  switch (E.Slot) {
  case Edit::SlotKind::IfThen:
    cast<IfStmt>(E.SlotOwner)->setThenStmt(NF);
    break;
  case Edit::SlotKind::IfElse:
    cast<IfStmt>(E.SlotOwner)->setElseStmt(NF);
    break;
  case Edit::SlotKind::WhileBody:
    cast<WhileStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::ForBody:
    cast<ForStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::AsyncBody:
    cast<AsyncStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::FinishBody:
    cast<FinishStmt>(E.SlotOwner)->setBody(NF);
    break;
  case Edit::SlotKind::None:
    assert(false && "slot edit without a slot");
    return nullptr;
  }
  Parents[E.Wrapped] = ParentSlot{nullptr, NF, Edit::SlotKind::FinishBody};
  Parents[NF] = ParentSlot{nullptr, E.SlotOwner, E.Slot};
  if (Edits)
    Edits->noteSlotWrap(NF, E.SlotOwner, E.Wrapped);
  return NF;
}

unsigned StaticPlacer::replicate(const Edit &E, FinishStmt *NewFinish) {
  unsigned Count = 0;

  if (E.Block) {
    // The wrapped statements moved under NewFinish; recover them for the
    // coverage predicate.
    std::unordered_set<const Stmt *> OwnerSet;
    addOwners(NewFinish, OwnerSet);
    OwnerSet.erase(NewFinish); // owners predate the edit

    auto It = BlockInstances.find(E.Block);
    if (It == BlockInstances.end())
      return 0;
    for (DpstNode *Q : It->second) {
      const auto &Kids = Q->children();
      size_t Lo = Npos, Hi = Npos;
      for (size_t Idx = 0; Idx != Kids.size(); ++Idx) {
        const DpstNode *C = Kids[Idx];
        bool In1 = C->owner() && OwnerSet.count(C->owner());
        bool In2 = C->ownerLast() && OwnerSet.count(C->ownerLast());
        if (!(In1 && In2))
          continue;
        if (Lo == Npos)
          Lo = Idx;
        Hi = Idx;
      }
      if (Lo == Npos)
        continue;
      DpstNode *F = Tree.insertFinish(Q, Lo, Hi, NewFinish);
      StmtInstances[NewFinish].push_back(F);
      ++Count;
    }
    return Count;
  }

  // Slot edits.
  if (E.Slot == Edit::SlotKind::AsyncBody ||
      E.Slot == Edit::SlotKind::FinishBody) {
    // Wrapping the whole body of an async/finish: at every instance of the
    // owner, the new finish adopts all children.
    auto It = StmtInstances.find(E.SlotOwner);
    if (It == StmtInstances.end())
      return 0;
    for (DpstNode *X : It->second) {
      if (X->children().empty())
        continue;
      DpstNode *F =
          Tree.insertFinish(X, 0, X->children().size() - 1, NewFinish);
      StmtInstances[NewFinish].push_back(F);
      ++Count;
    }
    return Count;
  }

  // Deep wrap of an async/finish statement in a structured body slot: wrap
  // each dynamic instance of the statement individually.
  auto It = StmtInstances.find(E.Wrapped);
  if (It == StmtInstances.end())
    return 0;
  for (DpstNode *X : It->second) {
    DpstNode *F = Tree.insertFinish(X->parent(), X->indexInParent(),
                                    X->indexInParent(), NewFinish);
    StmtInstances[NewFinish].push_back(F);
    ++Count;
  }
  return Count;
}

std::optional<AppliedFinish> StaticPlacer::apply(const DepGroup &G,
                                                 uint32_t I, uint32_t K) {
  auto E = mapRange(G, I, K);
  if (!E)
    return std::nullopt;

  AppliedFinish Result;
  if (E->Block)
    Result.AnchorLoc = E->Block->stmts()[E->FirstIdx]->loc();
  else
    Result.AnchorLoc = E->Wrapped->loc();

  FinishStmt *NF = applyEdit(*E);
  if (!NF)
    return std::nullopt;
  Result.Stmt = NF;
  Result.DynamicInstances = replicate(*E, NF);
  Applied.push_back(Result);
  return Result;
}
