//===- StaticPlacer.h - Static finish placement ------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static finish placement (paper §6): maps a dynamic finish placement —
/// "enclose non-scope children [i..k] of this NS-LCA in a finish" — to an
/// edit of the input program, and replicates the resulting finish node at
/// every dynamic instance of the edited static site so the S-DPST stays
/// consistent without re-execution (paper steps 3(d)-(f)).
///
/// The mapping pipeline per range:
///
///  1. findInsertionPoint — the paper's bottom-up traversal: the highest
///     S-DPST position whose child range covers exactly the requested
///     nodes, rejecting ranges whose neighbors share a subtree (the Fig. 5
///     scoping condition, stricter than Algorithm 2's depth test because it
///     also guarantees AST expressibility).
///  2. mapRange — turns the insertion point into an AST edit: either a
///     consecutive statement range of one block (the common case), or
///     wrapping the body slot of a structured statement. Rejects edits
///     whose dynamic extent would swallow a race sink or a DP neighbor,
///     edits that split a statement between instances, and edits that
///     would capture a local declaration referenced after the range.
///  3. apply — performs the edit and inserts a matching finish node at
///     every dynamic instance of the site.
///
/// A single async/finish graph node can always be repaired by wrapping its
/// own statement (deep wrap), which is what makes the DP feasible.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_STATICPLACER_H
#define TDR_REPAIR_STATICPLACER_H

#include "ast/AstContext.h"
#include "repair/ConstructChoice.h"
#include "repair/DepGraph.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace tdr {

class FinishEditSink;

/// One applied finish repair, for reporting.
struct AppliedFinish {
  FinishStmt *Stmt = nullptr;   ///< the synthesized statement
  SourceLoc AnchorLoc;          ///< location of the first wrapped statement
  unsigned DynamicInstances = 0;///< S-DPST nodes inserted
};

/// One applied repair of any construct, for reporting. Finish repairs also
/// surface here (apply() wraps its AppliedFinish); force and isolated
/// repairs only here.
struct AppliedRepair {
  RepairConstruct Construct = RepairConstruct::Finish;
  SourceLoc AnchorLoc;           ///< pre-repair text position of the edit
  unsigned DynamicInstances = 0; ///< dynamic sites the edit covers
  /// Force and isolated edits change the event stream (they are not
  /// replayable finish-map edits), so the driver must invalidate recorded
  /// traces after applying one.
  bool InvalidatesTrace = false;
};

/// Performs static placement against one (program, S-DPST) pair. The
/// program and tree are mutated by apply(); validity queries are pure.
class StaticPlacer {
public:
  /// \p Edits, when non-null, observes every finish insertion apply()
  /// performs (both block-range and body-slot wraps) so recorded traces
  /// stay replayable against the edited program.
  StaticPlacer(Dpst &Tree, AstContext &Ctx, Program &Prog,
               FinishEditSink *Edits = nullptr);

  /// DP validity oracle: can a finish be placed around graph nodes [I, K]
  /// of \p G and mapped back to the program?
  bool isValidRange(const DepGroup &G, uint32_t I, uint32_t K);

  /// Applies the finish around [I, K]: edits the AST and replicates finish
  /// nodes across the S-DPST. Returns the applied record, or nullopt when
  /// mapping fails (callers fall back to re-detection).
  std::optional<AppliedFinish> apply(const DepGroup &G, uint32_t I,
                                     uint32_t K);

  /// Can edge (X, Y) be cut by forcing a future earlier? Requires the
  /// source node to be a future whose declaring statement shares a block
  /// with the sink's covering statement, the sink coming later.
  bool canForce(const DepGroup &G, uint32_t X, uint32_t Y);

  /// Inserts `force(f);` directly in front of the sink's covering
  /// statement. The force joins the future's whole subtree, ordering the
  /// racing accesses without joining unrelated tasks.
  std::optional<AppliedRepair> applyForce(const DepGroup &G, uint32_t X,
                                          uint32_t Y);

  /// Can edge (X, Y) be cut by isolating the racing statements? Every
  /// race on the edge must have both steps covered by a single, simple
  /// statement (assignment or builtin call, no user calls) sitting
  /// directly in a block.
  bool canIsolate(const DepGroup &G, uint32_t X, uint32_t Y);

  /// Wraps each racing statement of the edge in `isolated { }`.
  std::optional<AppliedRepair> applyIsolated(const DepGroup &G, uint32_t X,
                                             uint32_t Y);

  /// Modeled critical-path penalty of isolating edge (X, Y): per race,
  /// the shorter racing step may wait for the longer one, so the penalty
  /// is the sum of min(source weight, sink weight), at least 1 per race.
  uint64_t isolatedPenalty(const DepGroup &G, uint32_t X, uint32_t Y) const;

  const std::vector<AppliedFinish> &applied() const { return Applied; }

  /// Why the most recent isValidRange/apply call rejected its range
  /// (empty after a successful mapping). Feeds placement provenance in
  /// run reports.
  const std::string &lastRejectReason() const { return RejectReason; }

private:
  struct InsertionPoint {
    DpstNode *Parent = nullptr;
    size_t Begin = 0, End = 0;
  };

  /// Statement-level description of the edit.
  struct Edit {
    /// Block edit: wrap Block->stmts()[FirstIdx..LastIdx].
    BlockStmt *Block = nullptr;
    size_t FirstIdx = 0, LastIdx = 0;
    /// Slot edit: wrap the statement *Slot points at (a body slot of a
    /// structured statement). Wrapped is the current occupant.
    Stmt *SlotOwner = nullptr;
    enum class SlotKind {
      None, IfThen, IfElse, WhileBody, ForBody, AsyncBody, FinishBody,
      IsolatedBody
    } Slot = SlotKind::None;
    Stmt *Wrapped = nullptr;
  };

  /// A mapped force edit: insert `force(f);` at InsertIdx of Block.
  struct ForceEdit {
    BlockStmt *Block = nullptr;
    size_t InsertIdx = 0;
    const FutureStmt *Future = nullptr;
    const Stmt *SinkStmt = nullptr;
  };

  /// A mapped isolated edit: the (unique) racing statements to wrap.
  struct IsolatedEdit {
    struct Site {
      BlockStmt *Block = nullptr;
      size_t Index = 0;
      Stmt *Target = nullptr;
    };
    std::vector<Site> Sites;
  };

  std::optional<ForceEdit> mapForce(const DepGroup &G, uint32_t X,
                                    uint32_t Y);
  std::optional<IsolatedEdit> mapIsolated(const DepGroup &G, uint32_t X,
                                          uint32_t Y);

  /// Candidate insertion positions from the initial LCA position up to the
  /// highest equivalent one; empty when the range cannot be separated from
  /// its neighbors at all.
  std::vector<InsertionPoint> findInsertionPoints(const DpstNode *L,
                                                  DpstNode *First,
                                                  DpstNode *Last,
                                                  const DpstNode *LeftN,
                                                  const DpstNode *RightN);

  std::optional<Edit> mapRange(const DepGroup &G, uint32_t I, uint32_t K);
  std::optional<Edit> mapBlockEdit(const DepGroup &G, uint32_t I, uint32_t K,
                                   const InsertionPoint &IP);
  /// Fallback for single async/finish nodes: wrap their own statement.
  std::optional<Edit> deepWrapEdit(DpstNode *X);

  /// Index of \p S in \p B, looking through synthesized finishes that
  /// earlier edits may have wrapped around it; npos when absent.
  size_t findStmtIndex(const BlockStmt *B, const Stmt *S) const;

  /// True when a local declared in B[First..Last] is referenced by
  /// statements after Last (wrapping would break scoping).
  bool declEscapes(const BlockStmt *B, size_t First, size_t Last) const;

  FinishStmt *applyEdit(const Edit &E);
  unsigned replicate(const Edit &E, FinishStmt *NewFinish);

  /// Rebuilds the statement parent-slot map and block instance map.
  void indexProgram();
  void indexTree();

  Dpst &Tree;
  AstContext &Ctx;
  Program &Prog;
  FinishEditSink *Edits = nullptr;

  /// All scope instances per container block (for replication).
  std::unordered_map<const BlockStmt *, std::vector<DpstNode *>>
      BlockInstances;
  /// All async/finish nodes per statement (for slot-wrap replication).
  std::unordered_map<const Stmt *, std::vector<DpstNode *>> StmtInstances;
  /// Parent slot of each statement (for deep wraps).
  struct ParentSlot {
    BlockStmt *Block = nullptr;
    Stmt *Owner = nullptr;
    Edit::SlotKind Slot = Edit::SlotKind::None;
  };
  std::unordered_map<const Stmt *, ParentSlot> Parents;

  std::vector<AppliedFinish> Applied;
  std::string RejectReason; ///< see lastRejectReason()
  /// Statements already wrapped in a synthesized isolated section (an
  /// edge with several races over one statement wraps it once).
  std::unordered_set<const Stmt *> IsolatedWrapped;
};

} // namespace tdr

#endif // TDR_REPAIR_STATICPLACER_H
