//===- StaticPlacer.h - Static finish placement ------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static finish placement (paper §6): maps a dynamic finish placement —
/// "enclose non-scope children [i..k] of this NS-LCA in a finish" — to an
/// edit of the input program, and replicates the resulting finish node at
/// every dynamic instance of the edited static site so the S-DPST stays
/// consistent without re-execution (paper steps 3(d)-(f)).
///
/// The mapping pipeline per range:
///
///  1. findInsertionPoint — the paper's bottom-up traversal: the highest
///     S-DPST position whose child range covers exactly the requested
///     nodes, rejecting ranges whose neighbors share a subtree (the Fig. 5
///     scoping condition, stricter than Algorithm 2's depth test because it
///     also guarantees AST expressibility).
///  2. mapRange — turns the insertion point into an AST edit: either a
///     consecutive statement range of one block (the common case), or
///     wrapping the body slot of a structured statement. Rejects edits
///     whose dynamic extent would swallow a race sink or a DP neighbor,
///     edits that split a statement between instances, and edits that
///     would capture a local declaration referenced after the range.
///  3. apply — performs the edit and inserts a matching finish node at
///     every dynamic instance of the site.
///
/// A single async/finish graph node can always be repaired by wrapping its
/// own statement (deep wrap), which is what makes the DP feasible.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_STATICPLACER_H
#define TDR_REPAIR_STATICPLACER_H

#include "ast/AstContext.h"
#include "repair/DepGraph.h"

#include <optional>
#include <unordered_map>

namespace tdr {

class FinishEditSink;

/// One applied repair, for reporting.
struct AppliedFinish {
  FinishStmt *Stmt = nullptr;   ///< the synthesized statement
  SourceLoc AnchorLoc;          ///< location of the first wrapped statement
  unsigned DynamicInstances = 0;///< S-DPST nodes inserted
};

/// Performs static placement against one (program, S-DPST) pair. The
/// program and tree are mutated by apply(); validity queries are pure.
class StaticPlacer {
public:
  /// \p Edits, when non-null, observes every finish insertion apply()
  /// performs (both block-range and body-slot wraps) so recorded traces
  /// stay replayable against the edited program.
  StaticPlacer(Dpst &Tree, AstContext &Ctx, Program &Prog,
               FinishEditSink *Edits = nullptr);

  /// DP validity oracle: can a finish be placed around graph nodes [I, K]
  /// of \p G and mapped back to the program?
  bool isValidRange(const DepGroup &G, uint32_t I, uint32_t K);

  /// Applies the finish around [I, K]: edits the AST and replicates finish
  /// nodes across the S-DPST. Returns the applied record, or nullopt when
  /// mapping fails (callers fall back to re-detection).
  std::optional<AppliedFinish> apply(const DepGroup &G, uint32_t I,
                                     uint32_t K);

  const std::vector<AppliedFinish> &applied() const { return Applied; }

  /// Why the most recent isValidRange/apply call rejected its range
  /// (empty after a successful mapping). Feeds placement provenance in
  /// run reports.
  const std::string &lastRejectReason() const { return RejectReason; }

private:
  struct InsertionPoint {
    DpstNode *Parent = nullptr;
    size_t Begin = 0, End = 0;
  };

  /// Statement-level description of the edit.
  struct Edit {
    /// Block edit: wrap Block->stmts()[FirstIdx..LastIdx].
    BlockStmt *Block = nullptr;
    size_t FirstIdx = 0, LastIdx = 0;
    /// Slot edit: wrap the statement *Slot points at (a body slot of a
    /// structured statement). Wrapped is the current occupant.
    Stmt *SlotOwner = nullptr;
    enum class SlotKind {
      None, IfThen, IfElse, WhileBody, ForBody, AsyncBody, FinishBody
    } Slot = SlotKind::None;
    Stmt *Wrapped = nullptr;
  };

  /// Candidate insertion positions from the initial LCA position up to the
  /// highest equivalent one; empty when the range cannot be separated from
  /// its neighbors at all.
  std::vector<InsertionPoint> findInsertionPoints(const DpstNode *L,
                                                  DpstNode *First,
                                                  DpstNode *Last,
                                                  const DpstNode *LeftN,
                                                  const DpstNode *RightN);

  std::optional<Edit> mapRange(const DepGroup &G, uint32_t I, uint32_t K);
  std::optional<Edit> mapBlockEdit(const DepGroup &G, uint32_t I, uint32_t K,
                                   const InsertionPoint &IP);
  /// Fallback for single async/finish nodes: wrap their own statement.
  std::optional<Edit> deepWrapEdit(DpstNode *X);

  /// Index of \p S in \p B, looking through synthesized finishes that
  /// earlier edits may have wrapped around it; npos when absent.
  size_t findStmtIndex(const BlockStmt *B, const Stmt *S) const;

  /// True when a local declared in B[First..Last] is referenced by
  /// statements after Last (wrapping would break scoping).
  bool declEscapes(const BlockStmt *B, size_t First, size_t Last) const;

  FinishStmt *applyEdit(const Edit &E);
  unsigned replicate(const Edit &E, FinishStmt *NewFinish);

  /// Rebuilds the statement parent-slot map and block instance map.
  void indexProgram();
  void indexTree();

  Dpst &Tree;
  AstContext &Ctx;
  Program &Prog;
  FinishEditSink *Edits = nullptr;

  /// All scope instances per container block (for replication).
  std::unordered_map<const BlockStmt *, std::vector<DpstNode *>>
      BlockInstances;
  /// All async/finish nodes per statement (for slot-wrap replication).
  std::unordered_map<const Stmt *, std::vector<DpstNode *>> StmtInstances;
  /// Parent slot of each statement (for deep wraps).
  struct ParentSlot {
    BlockStmt *Block = nullptr;
    Stmt *Owner = nullptr;
    Edit::SlotKind Slot = Edit::SlotKind::None;
  };
  std::unordered_map<const Stmt *, ParentSlot> Parents;

  std::vector<AppliedFinish> Applied;
  std::string RejectReason; ///< see lastRejectReason()
};

} // namespace tdr

#endif // TDR_REPAIR_STATICPLACER_H
