//===- FinishPlacement.h - Optimal finish placement DP -----------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic finish placement algorithm (paper §5.2, Algorithms 1-3).
/// Input: the dependence graph built from the subtree rooted at one
/// NS-LCA — nodes are the NS-LCA's non-scope children in left-to-right
/// order, each with an execution time; edges are data races (source index <
/// sink index). Output: a set of index ranges [s, e] to enclose in finish
/// blocks such that every edge (x, y) has some range with s <= x <= e < y,
/// minimizing the completion time of the block sequence.
///
/// The interval DP follows the paper's optimal-substructure recurrences
/// (Figures 12 and 13): Opt[i][j] is the minimal completion time of nodes
/// i..j; Est[i][j] is the earliest start offset of whatever follows the
/// block i..j. Partitioning i..j at k either crosses no edges (no finish
/// needed) or requires a finish around i..k, which must pass the caller's
/// lexical-scope validity test (Algorithm 2 in the paper; here a callback,
/// because full validity also involves AST mapping — see StaticPlacer).
///
/// Two fixes relative to the paper's pseudocode, both consistent with its
/// prose: Cmin is reset per (i, j) rather than per k, and Algorithm 3's
/// right recursion uses (p+1, end).
///
//===----------------------------------------------------------------------===//

#ifndef TDR_REPAIR_FINISHPLACEMENT_H
#define TDR_REPAIR_FINISHPLACEMENT_H

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tdr {

/// The abstract dependence graph the DP runs on (paper §5.1). Indices are
/// 0-based here.
struct PlacementProblem {
  /// Execution time of each node: step weight for steps, subtree critical
  /// path length for asyncs and pre-existing finish subtrees.
  std::vector<uint64_t> Times;
  /// True when the node is an async (its time does not delay successors).
  std::vector<bool> IsAsync;
  /// Race edges (x, y), x < y, deduplicated.
  std::vector<std::pair<uint32_t, uint32_t>> Edges;

  size_t size() const { return Times.size(); }
};

/// Lexical validity oracle: may a finish be placed around nodes [I, K]
/// (inclusive, 0-based)? The oracle is consulted for every range,
/// single-node ranges included — when it rejects even those, the DP
/// reports the problem infeasible instead of returning a plan the AST
/// mapping would later refuse to apply.
using ValidRangeFn = std::function<bool(uint32_t I, uint32_t K)>;

/// DP outcome.
struct PlacementResult {
  bool Feasible = false;
  /// Finish ranges [s, e], inclusive, 0-based; outer ranges first.
  std::vector<std::pair<uint32_t, uint32_t>> Finishes;
  /// Opt(0, n-1): modeled completion time of the repaired block.
  uint64_t Cost = 0;
};

/// Runs Algorithms 1 and 3 on \p Problem. O(n^3) time after an
/// O(n^2 log m) crossing-edge precomputation.
PlacementResult placeFinishes(const PlacementProblem &Problem,
                              const ValidRangeFn &Valid);

/// Reference cost model used by tests: evaluates the completion time of
/// the node sequence under a given set of (well-nested) finish ranges.
/// Semantics match the DP's model: asyncs run concurrently from their
/// spawn point; a finish range joins everything spawned inside it.
uint64_t evalPlacementCost(
    const PlacementProblem &Problem,
    const std::vector<std::pair<uint32_t, uint32_t>> &Finishes);

/// Construct-aware generalization of evalPlacementCost: additionally
/// models force join edges (x, y) — a `force` of future x inserted in
/// front of node y raises the serial clock at y to x's completion time
/// (everything the future did happens-before the forcing continuation),
/// without joining any other task. With empty \p ForceEdges this is
/// exactly evalPlacementCost (which delegates here). Isolated edges are
/// *not* modeled — isolation imposes no ordering; the chooser adds its
/// contention penalty on top.
uint64_t evalConstructCost(
    const PlacementProblem &Problem,
    const std::vector<std::pair<uint32_t, uint32_t>> &Finishes,
    const std::vector<std::pair<uint32_t, uint32_t>> &ForceEdges);

/// True when every edge (x, y) has a finish range [s, e] with
/// s <= x <= e < y.
bool placementResolvesAllEdges(
    const PlacementProblem &Problem,
    const std::vector<std::pair<uint32_t, uint32_t>> &Finishes);

/// Exhaustive optimal placement for small problems (n <= ~10); used by
/// property tests to validate the DP.
PlacementResult bruteForcePlacement(const PlacementProblem &Problem,
                                    const ValidRangeFn &Valid);

} // namespace tdr

#endif // TDR_REPAIR_FINISHPLACEMENT_H
