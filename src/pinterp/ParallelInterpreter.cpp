//===- ParallelInterpreter.cpp --------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// A second, independent HJ-mini evaluator: where the sequential engine
// executes asyncs inline depth-first, this one spawns them on the
// work-stealing runtime. The expression/statement semantics deliberately
// mirror interp/Interpreter.cpp; the engines cross-check each other in the
// pinterp tests (same program, same input, same output).
//
//===----------------------------------------------------------------------===//

#include "pinterp/ParallelInterpreter.h"

#include "ast/Ast.h"
#include "runtime/Runtime.h"
#include "support/StringUtils.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>

using namespace tdr;

namespace {

/// One future's spawn state. The initializer runs exactly once, by
/// whichever side wins the claim: the spawned task, or a forcing task that
/// arrives before the spawned task started. The inline-evaluation path
/// makes force deadlock-free even on a single worker — a forcer never
/// blocks on a task that has not started running.
struct FutureState {
  const Expr *Init = nullptr;
  std::vector<Value> Snapshot; ///< frame snapshot; consumed by the winner
  std::atomic<bool> Claimed{false};

  std::mutex M;
  std::condition_variable CV;
  bool Done = false;
  Value V;

  void publish(Value Val) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Done = true;
      V = Val;
    }
    CV.notify_all();
  }
};

/// State shared by all tasks of one parallel execution.
struct SharedState {
  const Program &P;
  const ExecOptions &Opts;

  std::vector<Value> Globals;

  std::mutex HeapMutex;
  std::deque<ArrayObj> Heap;
  uint32_t NextArrayId = 1;

  std::mutex FutureMutex;
  std::deque<FutureState> Futures; ///< stable addresses; index = future id

  /// Serializes isolated sections program-wide (mutual exclusion is the
  /// whole semantics of the construct).
  std::mutex IsolatedMutex;

  std::mutex OutputMutex;
  std::string Output;

  std::mutex RandMutex;
  Rng Rand;

  std::atomic<uint64_t> Work{0};
  std::atomic<bool> Aborted{false};
  std::mutex ErrorMutex;
  std::string Error;
  SourceLoc ErrorLoc;

  SharedState(const Program &P, const ExecOptions &Opts)
      : P(P), Opts(Opts), Rand(Opts.Seed) {}

  void fail(SourceLoc Loc, std::string Msg) {
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    if (Error.empty()) {
      Error = std::move(Msg);
      ErrorLoc = Loc;
    }
    Aborted.store(true, std::memory_order_release);
  }

  ArrayObj *allocArrayObj(size_t N, Value Fill) {
    std::lock_guard<std::mutex> Lock(HeapMutex);
    Heap.emplace_back(NextArrayId++, N, Fill);
    return &Heap.back();
  }

  FutureState *allocFuture(uint32_t &FidOut) {
    std::lock_guard<std::mutex> Lock(FutureMutex);
    FidOut = static_cast<uint32_t>(Futures.size());
    Futures.emplace_back();
    return &Futures.back();
  }

  FutureState *future(uint32_t Fid) {
    std::lock_guard<std::mutex> Lock(FutureMutex);
    return &Futures[Fid];
  }
};

Value defaultValue(const Type *T) {
  switch (T->kind()) {
  case Type::Kind::Int:
    return Value::makeInt(0);
  case Type::Kind::Double:
    return Value::makeDouble(0.0);
  case Type::Kind::Bool:
    return Value::makeBool(false);
  case Type::Kind::Array:
    return Value::makeArray(nullptr);
  case Type::Kind::Future:
    return Value::makeFuture(0); // unreachable: handles always initialize
  case Type::Kind::Void:
    break;
  }
  return Value::makeInt(0);
}

/// Per-task evaluator: owns a call stack; shares everything else.
class TaskExec {
public:
  explicit TaskExec(SharedState &S) : S(S) {}

  enum class Flow { Normal, Return, Error };

  /// Entry: runs \p Body with a copy of \p Snapshot as the frame.
  void runTaskBody(const Stmt *Body, std::vector<Value> Snapshot) {
    Stack.push_back(std::move(Snapshot));
    execStmt(Body);
    Stack.pop_back();
  }

  /// Evaluates a global initializer (no enclosing function frame).
  bool evalInit(const Expr *E, Value &Out) {
    Stack.emplace_back();
    bool Ok = evalExpr(E, Out);
    Stack.pop_back();
    return Ok;
  }

  Flow execStmt(const Stmt *St) {
    if (S.Aborted.load(std::memory_order_acquire))
      return Flow::Error;
    if ((S.Work.fetch_add(1, std::memory_order_relaxed) + 1) >
        S.Opts.WorkLimit) {
      S.fail(St->loc(), "work limit exceeded (possible runaway loop)");
      return Flow::Error;
    }

    switch (St->kind()) {
    case Stmt::Kind::Block: {
      for (const Stmt *C : cast<BlockStmt>(St)->stmts()) {
        Flow F = execStmt(C);
        if (F != Flow::Normal)
          return F;
      }
      return Flow::Normal;
    }
    case Stmt::Kind::VarDecl: {
      const auto *V = cast<VarDeclStmt>(St);
      Value Init = defaultValue(V->decl()->type());
      if (V->init() && !evalExpr(V->init(), Init))
        return Flow::Error;
      Stack.back()[V->decl()->slot()] = Init;
      return Flow::Normal;
    }
    case Stmt::Kind::Assign:
      return execAssign(cast<AssignStmt>(St));
    case Stmt::Kind::Expr: {
      Value Ignored;
      return evalExpr(cast<ExprStmt>(St)->expr(), Ignored) ? Flow::Normal
                                                           : Flow::Error;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(St);
      Value Cond;
      if (!evalExpr(I->cond(), Cond))
        return Flow::Error;
      if (Cond.asBool())
        return execStmt(I->thenStmt());
      if (I->elseStmt())
        return execStmt(I->elseStmt());
      return Flow::Normal;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(St);
      while (true) {
        if (S.Aborted.load(std::memory_order_acquire))
          return Flow::Error;
        Value Cond;
        if (!evalExpr(W->cond(), Cond))
          return Flow::Error;
        if (!Cond.asBool())
          return Flow::Normal;
        Flow F = execStmt(W->body());
        if (F != Flow::Normal)
          return F;
      }
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(St);
      if (F->init()) {
        Flow Fl = execStmt(F->init());
        if (Fl != Flow::Normal)
          return Fl;
      }
      while (true) {
        if (S.Aborted.load(std::memory_order_acquire))
          return Flow::Error;
        if (F->cond()) {
          Value Cond;
          if (!evalExpr(F->cond(), Cond))
            return Flow::Error;
          if (!Cond.asBool())
            return Flow::Normal;
        }
        Flow Fl = execStmt(F->body());
        if (Fl != Flow::Normal)
          return Fl;
        if (F->step()) {
          Fl = execStmt(F->step());
          if (Fl != Flow::Normal)
            return Fl;
        }
      }
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(St);
      if (R->value()) {
        if (!evalExpr(R->value(), RetVal))
          return Flow::Error;
        HasRetVal = true;
      }
      return Flow::Return;
    }
    case Stmt::Kind::Async: {
      const auto *A = cast<AsyncStmt>(St);
      if (InIsolated) {
        S.fail(St->loc(), "cannot spawn a task inside an isolated section");
        return Flow::Error;
      }
      // Snapshot the frame; the child task runs on its own TaskExec.
      std::vector<Value> Snapshot = Stack.back();
      SharedState *Shared = &S;
      const Stmt *Body = A->body();
      tdr::async([Shared, Body, Snapshot = std::move(Snapshot)]() mutable {
        TaskExec Child(*Shared);
        Child.runTaskBody(Body, std::move(Snapshot));
      });
      return Flow::Normal;
    }
    case Stmt::Kind::Finish: {
      const auto *Fin = cast<FinishStmt>(St);
      if (InIsolated) {
        S.fail(St->loc(), "'finish' is not allowed inside an isolated section");
        return Flow::Error;
      }
      FinishScope Scope;
      Flow F = execStmt(Fin->body());
      Scope.wait();
      return F;
    }
    case Stmt::Kind::Future: {
      const auto *F = cast<FutureStmt>(St);
      if (InIsolated) {
        S.fail(St->loc(), "cannot spawn a future inside an isolated section");
        return Flow::Error;
      }
      uint32_t Fid = 0;
      FutureState *FS = S.allocFuture(Fid);
      // Publish the handle before spawning: the parent continuation (and
      // anything it spawns) may force immediately.
      Stack.back()[F->decl()->slot()] = Value::makeFuture(Fid);
      FS->Init = F->init();
      FS->Snapshot = Stack.back();
      SharedState *Shared = &S;
      tdr::async([Shared, FS] {
        if (FS->Claimed.exchange(true, std::memory_order_acq_rel))
          return; // a forcer already ran the initializer inline
        TaskExec Child(*Shared);
        Child.evalFuture(FS);
      });
      return Flow::Normal;
    }
    case Stmt::Kind::Isolated: {
      const auto *I = cast<IsolatedStmt>(St);
      if (InIsolated) {
        S.fail(St->loc(), "isolated sections do not nest");
        return Flow::Error;
      }
      std::lock_guard<std::mutex> Lock(S.IsolatedMutex);
      InIsolated = true;
      Flow F = execStmt(I->body());
      InIsolated = false;
      return F;
    }
    case Stmt::Kind::Forasync:
      S.fail(St->loc(), "internal: forasync statement survived lowering");
      return Flow::Error;
    }
    return Flow::Normal;
  }

  /// Runs a claimed future's initializer and publishes the value. On
  /// failure the value is still published (default) so forcers wake up;
  /// they re-check the abort flag.
  void evalFuture(FutureState *FS) {
    Stack.push_back(std::move(FS->Snapshot));
    Value V;
    evalExpr(FS->Init, V);
    Stack.pop_back();
    FS->publish(V);
  }

private:
  Flow execAssign(const AssignStmt *A) {
    const Expr *Target = A->target();
    if (const auto *Ref = dyn_cast<VarRefExpr>(Target)) {
      const VarDecl *D = Ref->decl();
      Value V;
      if (A->isCompound()) {
        Value Current;
        if (!evalExpr(Target, Current))
          return Flow::Error;
        Value Rhs;
        if (!evalExpr(A->value(), Rhs))
          return Flow::Error;
        if (!applyBinary(A->compoundOp(), Current, Rhs, V, A->loc()))
          return Flow::Error;
      } else if (!evalExpr(A->value(), V)) {
        return Flow::Error;
      }
      if (D->isGlobal())
        S.Globals[D->slot()] = V;
      else
        Stack.back()[D->slot()] = V;
      return Flow::Normal;
    }

    const auto *Idx = cast<IndexExpr>(Target);
    Value BaseV;
    if (!evalExpr(Idx->base(), BaseV))
      return Flow::Error;
    Value IndexV;
    if (!evalExpr(Idx->index(), IndexV))
      return Flow::Error;
    int64_t I = IndexV.asInt();
    ArrayObj *Arr = checkedArray(BaseV, I, Idx->loc());
    if (!Arr)
      return Flow::Error;
    Value V;
    if (A->isCompound()) {
      Value Current = Arr->elem(static_cast<size_t>(I));
      Value Rhs;
      if (!evalExpr(A->value(), Rhs))
        return Flow::Error;
      if (!applyBinary(A->compoundOp(), Current, Rhs, V, A->loc()))
        return Flow::Error;
    } else if (!evalExpr(A->value(), V)) {
      return Flow::Error;
    }
    Arr->elem(static_cast<size_t>(I)) = V;
    return Flow::Normal;
  }

  ArrayObj *checkedArray(const Value &BaseV, int64_t Index, SourceLoc Loc) {
    ArrayObj *Arr = BaseV.asArray();
    if (!Arr) {
      S.fail(Loc, "null array dereference");
      return nullptr;
    }
    if (Index < 0 || static_cast<size_t>(Index) >= Arr->size()) {
      S.fail(Loc, strFormat("array index %lld out of bounds [0, %zu)",
                            static_cast<long long>(Index), Arr->size()));
      return nullptr;
    }
    return Arr;
  }

  bool applyBinary(BinaryOp Op, const Value &L, const Value &R, Value &Out,
                   SourceLoc Loc) {
    switch (Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      if (L.isInt()) {
        int64_t A = L.asInt(), B = R.asInt();
        switch (Op) {
        case BinaryOp::Add: Out = Value::makeInt(A + B); return true;
        case BinaryOp::Sub: Out = Value::makeInt(A - B); return true;
        case BinaryOp::Mul: Out = Value::makeInt(A * B); return true;
        default:
          if (B == 0) {
            S.fail(Loc, "integer division by zero");
            return false;
          }
          if (A == INT64_MIN && B == -1) {
            S.fail(Loc, "integer division overflow");
            return false;
          }
          Out = Value::makeInt(A / B);
          return true;
        }
      } else {
        double A = L.asDouble(), B = R.asDouble();
        switch (Op) {
        case BinaryOp::Add: Out = Value::makeDouble(A + B); return true;
        case BinaryOp::Sub: Out = Value::makeDouble(A - B); return true;
        case BinaryOp::Mul: Out = Value::makeDouble(A * B); return true;
        default: Out = Value::makeDouble(A / B); return true;
        }
      }
    case BinaryOp::Mod: {
      int64_t A = L.asInt(), B = R.asInt();
      if (B == 0) {
        S.fail(Loc, "integer modulo by zero");
        return false;
      }
      if (A == INT64_MIN && B == -1) {
        S.fail(Loc, "integer modulo overflow");
        return false;
      }
      Out = Value::makeInt(A % B);
      return true;
    }
    case BinaryOp::BAnd:
      Out = Value::makeInt(L.asInt() & R.asInt());
      return true;
    case BinaryOp::BOr:
      Out = Value::makeInt(L.asInt() | R.asInt());
      return true;
    case BinaryOp::BXor:
      Out = Value::makeInt(L.asInt() ^ R.asInt());
      return true;
    case BinaryOp::Shl: {
      uint64_t Sh = static_cast<uint64_t>(R.asInt()) & 63;
      Out = Value::makeInt(
          static_cast<int64_t>(static_cast<uint64_t>(L.asInt()) << Sh));
      return true;
    }
    case BinaryOp::Shr: {
      uint64_t Sh = static_cast<uint64_t>(R.asInt()) & 63;
      Out = Value::makeInt(L.asInt() >> Sh);
      return true;
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      bool B;
      if (L.isInt()) {
        int64_t A = L.asInt(), C = R.asInt();
        B = Op == BinaryOp::Lt   ? A < C
            : Op == BinaryOp::Le ? A <= C
            : Op == BinaryOp::Gt ? A > C
                                 : A >= C;
      } else {
        double A = L.asDouble(), C = R.asDouble();
        B = Op == BinaryOp::Lt   ? A < C
            : Op == BinaryOp::Le ? A <= C
            : Op == BinaryOp::Gt ? A > C
                                 : A >= C;
      }
      Out = Value::makeBool(B);
      return true;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      bool Equal;
      if (L.isInt())
        Equal = L.asInt() == R.asInt();
      else if (L.isDouble())
        Equal = L.asDouble() == R.asDouble();
      else
        Equal = L.asBool() == R.asBool();
      Out = Value::makeBool(Op == BinaryOp::Eq ? Equal : !Equal);
      return true;
    }
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      Out = Value::makeBool(Op == BinaryOp::LAnd
                                ? (L.asBool() && R.asBool())
                                : (L.asBool() || R.asBool()));
      return true;
    }
    S.fail(Loc, "unsupported binary operator");
    return false;
  }

  bool evalExpr(const Expr *E, Value &Out) {
    S.Work.fetch_add(1, std::memory_order_relaxed);
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      Out = Value::makeInt(cast<IntLitExpr>(E)->value());
      return true;
    case Expr::Kind::DoubleLit:
      Out = Value::makeDouble(cast<DoubleLitExpr>(E)->value());
      return true;
    case Expr::Kind::BoolLit:
      Out = Value::makeBool(cast<BoolLitExpr>(E)->value());
      return true;
    case Expr::Kind::VarRef: {
      const VarDecl *D = cast<VarRefExpr>(E)->decl();
      Out = D->isGlobal() ? S.Globals[D->slot()] : Stack.back()[D->slot()];
      return true;
    }
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      Value BaseV, IndexV;
      if (!evalExpr(I->base(), BaseV) || !evalExpr(I->index(), IndexV))
        return false;
      int64_t Idx = IndexV.asInt();
      ArrayObj *Arr = checkedArray(BaseV, Idx, I->loc());
      if (!Arr)
        return false;
      Out = Arr->elem(static_cast<size_t>(Idx));
      return true;
    }
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E), Out);
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Value V;
      if (!evalExpr(U->operand(), V))
        return false;
      switch (U->op()) {
      case UnaryOp::Neg:
        Out = V.isInt() ? Value::makeInt(-V.asInt())
                        : Value::makeDouble(-V.asDouble());
        return true;
      case UnaryOp::Not:
        Out = Value::makeBool(!V.asBool());
        return true;
      case UnaryOp::BNot:
        Out = Value::makeInt(~V.asInt());
        return true;
      }
      return false;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->op() == BinaryOp::LAnd || B->op() == BinaryOp::LOr) {
        Value L;
        if (!evalExpr(B->lhs(), L))
          return false;
        bool LB = L.asBool();
        if ((B->op() == BinaryOp::LAnd && !LB) ||
            (B->op() == BinaryOp::LOr && LB)) {
          Out = Value::makeBool(LB);
          return true;
        }
        return evalExpr(B->rhs(), Out);
      }
      Value L, R;
      if (!evalExpr(B->lhs(), L) || !evalExpr(B->rhs(), R))
        return false;
      return applyBinary(B->op(), L, R, Out, B->loc());
    }
    case Expr::Kind::NewArray: {
      const auto *N = cast<NewArrayExpr>(E);
      std::vector<int64_t> Dims;
      for (const Expr *D : N->dims()) {
        Value V;
        if (!evalExpr(D, V))
          return false;
        if (V.asInt() < 0) {
          S.fail(D->loc(), "negative array dimension");
          return false;
        }
        Dims.push_back(V.asInt());
      }
      return allocArray(N->elemType(), Dims, 0, Out);
    }
    }
    return false;
  }

  bool allocArray(const Type *ElemTy, const std::vector<int64_t> &Dims,
                  size_t Level, Value &Out) {
    size_t N = static_cast<size_t>(Dims[Level]);
    if (Level + 1 == Dims.size()) {
      Out = Value::makeArray(S.allocArrayObj(N, defaultValue(ElemTy)));
      return true;
    }
    ArrayObj *Arr = S.allocArrayObj(N, Value::makeArray(nullptr));
    for (size_t I = 0; I != N; ++I) {
      Value Sub;
      if (!allocArray(ElemTy, Dims, Level + 1, Sub))
        return false;
      Arr->elem(I) = Sub;
    }
    Out = Value::makeArray(Arr);
    return true;
  }

  bool evalCall(const CallExpr *C, Value &Out) {
    if (C->builtin() != Builtin::None)
      return evalBuiltin(C, Out);
    const FuncDecl *F = C->callee();
    if (Stack.size() >= S.Opts.MaxCallDepth) {
      S.fail(C->loc(), "call depth limit exceeded (runaway recursion?)");
      return false;
    }
    std::vector<Value> Frame(F->numFrameSlots());
    for (size_t I = 0; I != C->args().size(); ++I) {
      Value V;
      if (!evalExpr(C->args()[I], V))
        return false;
      Frame[F->params()[I]->slot()] = V;
    }
    bool SavedHas = HasRetVal;
    Value SavedRet = RetVal;
    HasRetVal = false;
    Stack.push_back(std::move(Frame));
    Flow Fl = Flow::Normal;
    for (const Stmt *St : F->body()->stmts()) {
      Fl = execStmt(St);
      if (Fl != Flow::Normal)
        break;
    }
    Stack.pop_back();
    if (Fl == Flow::Error) {
      HasRetVal = SavedHas;
      RetVal = SavedRet;
      return false;
    }
    Out = HasRetVal ? RetVal : defaultValue(F->returnType());
    HasRetVal = SavedHas;
    RetVal = SavedRet;
    return true;
  }

  bool evalBuiltin(const CallExpr *C, Value &Out) {
    std::vector<Value> A;
    A.reserve(C->args().size());
    for (const Expr *ArgE : C->args()) {
      Value V;
      if (!evalExpr(ArgE, V))
        return false;
      A.push_back(V);
    }
    Out = Value::makeInt(0);
    switch (C->builtin()) {
    case Builtin::None:
      break;
    case Builtin::Print: {
      std::lock_guard<std::mutex> Lock(S.OutputMutex);
      S.Output += A[0].str();
      S.Output += '\n';
      return true;
    }
    case Builtin::Len: {
      ArrayObj *Arr = A[0].asArray();
      if (!Arr) {
        S.fail(C->loc(), "len() of null array");
        return false;
      }
      Out = Value::makeInt(static_cast<int64_t>(Arr->size()));
      return true;
    }
    case Builtin::Sqrt:
      Out = Value::makeDouble(std::sqrt(A[0].asDouble()));
      return true;
    case Builtin::Sin:
      Out = Value::makeDouble(std::sin(A[0].asDouble()));
      return true;
    case Builtin::Cos:
      Out = Value::makeDouble(std::cos(A[0].asDouble()));
      return true;
    case Builtin::Exp:
      Out = Value::makeDouble(std::exp(A[0].asDouble()));
      return true;
    case Builtin::Log:
      Out = Value::makeDouble(std::log(A[0].asDouble()));
      return true;
    case Builtin::Floor:
      Out = Value::makeDouble(std::floor(A[0].asDouble()));
      return true;
    case Builtin::Abs:
      Out = A[0].isInt() ? Value::makeInt(std::llabs(A[0].asInt()))
                         : Value::makeDouble(std::fabs(A[0].asDouble()));
      return true;
    case Builtin::Min:
      Out = A[0].isInt()
                ? Value::makeInt(std::min(A[0].asInt(), A[1].asInt()))
                : Value::makeDouble(std::min(A[0].asDouble(), A[1].asDouble()));
      return true;
    case Builtin::Max:
      Out = A[0].isInt()
                ? Value::makeInt(std::max(A[0].asInt(), A[1].asInt()))
                : Value::makeDouble(std::max(A[0].asDouble(), A[1].asDouble()));
      return true;
    case Builtin::Pow:
      Out = Value::makeDouble(std::pow(A[0].asDouble(), A[1].asDouble()));
      return true;
    case Builtin::ToInt:
      Out = Value::makeInt(static_cast<int64_t>(A[0].asDouble()));
      return true;
    case Builtin::ToDouble:
      Out = Value::makeDouble(static_cast<double>(A[0].asInt()));
      return true;
    case Builtin::RandInt: {
      int64_t Bound = A[0].asInt();
      if (Bound <= 0) {
        S.fail(C->loc(), "randInt bound must be positive");
        return false;
      }
      std::lock_guard<std::mutex> Lock(S.RandMutex);
      Out = Value::makeInt(static_cast<int64_t>(
          S.Rand.nextBelow(static_cast<uint64_t>(Bound))));
      return true;
    }
    case Builtin::RandSeed: {
      std::lock_guard<std::mutex> Lock(S.RandMutex);
      S.Rand = Rng(static_cast<uint64_t>(A[0].asInt()));
      return true;
    }
    case Builtin::Arg: {
      int64_t I = A[0].asInt();
      Out = Value::makeInt(I >= 0 &&
                                   static_cast<size_t>(I) < S.Opts.Args.size()
                               ? S.Opts.Args[static_cast<size_t>(I)]
                               : 0);
      return true;
    }
    case Builtin::Force: {
      if (InIsolated) {
        S.fail(C->loc(), "force is not allowed inside an isolated section");
        return false;
      }
      FutureState *FS = S.future(A[0].asFuture());
      if (!FS->Claimed.exchange(true, std::memory_order_acq_rel)) {
        // The spawned task has not started: run the initializer here.
        evalFuture(FS);
      }
      std::unique_lock<std::mutex> Lock(FS->M);
      FS->CV.wait(Lock, [&] { return FS->Done; });
      if (S.Aborted.load(std::memory_order_acquire))
        return false;
      Out = FS->V;
      return true;
    }
    }
    S.fail(C->loc(), "unknown builtin");
    return false;
  }

  SharedState &S;
  std::vector<std::vector<Value>> Stack;
  Value RetVal;
  bool HasRetVal = false;
  /// This task holds the isolation lock (sema bans nested spawns, the
  /// interpreters enforce it dynamically through called functions too).
  bool InIsolated = false;
};

} // namespace

ExecResult tdr::runProgramParallel(const Program &P, Runtime &RT,
                                   const ExecOptions &Opts) {
  assert(!Opts.Monitor && "instrumentation requires sequential execution");
  SharedState S(P, Opts);

  const FuncDecl *Main = P.mainFunc();
  assert(Main && "sema guarantees a main function");

  RT.run([&] {
    TaskExec Root(S);
    // Global initializers, in order.
    S.Globals.reserve(P.globals().size());
    for (const VarDecl *G : P.globals())
      S.Globals.push_back(defaultValue(G->type()));
    bool InitOk = true;
    {
      TaskExec Init(S);
      for (const VarDecl *G : P.globals()) {
        if (!G->init())
          continue;
        Value V = defaultValue(G->type());
        if (!Init.evalInit(G->init(), V)) {
          InitOk = false;
          break;
        }
        S.Globals[G->slot()] = V;
      }
    }
    if (InitOk)
      Root.runTaskBody(Main->body(), std::vector<Value>(
                                          Main->numFrameSlots()));
  });

  ExecResult R;
  R.Ok = S.Error.empty();
  R.Error = S.Error;
  R.ErrorLoc = S.ErrorLoc;
  R.Output = std::move(S.Output);
  R.TotalWork = S.Work.load(std::memory_order_relaxed);
  return R;
}
