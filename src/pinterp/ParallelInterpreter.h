//===- ParallelInterpreter.h - Parallel HJ-mini execution --------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an HJ-mini program on the work-stealing runtime: async
/// statements become runtime tasks (capturing a by-value snapshot of the
/// enclosing frame, as in the sequential semantics), finish statements
/// become FinishScopes.
///
/// Shared state (globals, array elements) is accessed without locks — by
/// design: the point of the repair pipeline is that *repaired programs are
/// data race free*, and only race-free programs may be run here. Running a
/// racy program through this engine is undefined (just as it would be on
/// the paper's JVM runtime with a weak memory model). Use the sequential
/// interpreter + detector to establish race freedom first.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_PINTERP_PARALLELINTERPRETER_H
#define TDR_PINTERP_PARALLELINTERPRETER_H

#include "interp/Interpreter.h"

namespace tdr {

class Runtime;

/// Executes \p P in parallel on \p RT. Options' Monitor must be null
/// (instrumentation is a sequential-execution concept). The deterministic
/// RNG is shared and lock-protected: programs that call randInt
/// concurrently from parallel tasks are ordering-dependent, so benchmarks
/// seed and draw only in sequential sections.
ExecResult runProgramParallel(const Program &P, Runtime &RT,
                              const ExecOptions &Opts = ExecOptions());

} // namespace tdr

#endif // TDR_PINTERP_PARALLELINTERPRETER_H
