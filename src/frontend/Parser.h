//===- Parser.h - HJ-mini recursive descent parser ---------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive descent parser for HJ-mini. Grammar sketch:
///
/// \code
///   program   := (globalVar | funcDecl)*
///   globalVar := 'var' ident ':' type ('=' expr)? ';'
///   funcDecl  := 'func' ident '(' params? ')' (':' type)? block
///   type      := ('int' | 'double' | 'bool') ('[' ']')*
///   stmt      := block | varDecl | ifStmt | whileStmt | forStmt
///              | returnStmt | 'async' stmt | 'finish' stmt
///              | 'isolated' stmt | futureStmt | forasyncStmt
///              | simpleStmt ';'
///   futureStmt:= 'future' ident '=' expr ';'
///   forasyncStmt := 'forasync' '(' 'var' ident ':' 'int' '=' expr ';'
///                   ident '<' expr ';' 'chunk' expr ')' stmt
///   simpleStmt:= expr (assignOp expr)?     -- assignment or call
///   expr      := precedence-climbing over || && | ^ & ==/!= rel shifts
///                addsub muldiv, unary ! - ~, postfix call/index
///   primary   := literal | ident | '(' expr ')' | 'new' scalarType dims
/// \endcode
///
/// The parser produces an unresolved AST; sema binds names and types.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FRONTEND_PARSER_H
#define TDR_FRONTEND_PARSER_H

#include "ast/AstContext.h"
#include "frontend/Lexer.h"

#include <memory>

namespace tdr {

class DiagnosticsEngine;

/// Parses one HJ-mini compilation unit.
class Parser {
public:
  Parser(std::string_view Buffer, AstContext &Ctx, DiagnosticsEngine &Diags);

  /// Parses the whole buffer. Returns the program even when diagnostics
  /// were reported (callers must check Diags.hasErrors()); never null.
  Program *parseProgram();

private:
  // Token stream helpers.
  const Token &tok() const { return Tok; }
  void consume();
  bool consumeIf(TokenKind K);
  /// Reports an error and returns false when the current token is not \p K.
  bool expect(TokenKind K, const char *Context);
  /// expect + consume.
  bool expectAndConsume(TokenKind K, const char *Context);

  // Grammar productions.
  void parseGlobalVar(Program &P);
  void parseFuncDecl(Program &P);
  const Type *parseType();
  BlockStmt *parseBlock();
  Stmt *parseStmt();
  Stmt *parseVarDeclStmt();
  Stmt *parseIfStmt();
  Stmt *parseWhileStmt();
  Stmt *parseForStmt();
  Stmt *parseForasyncStmt();
  Stmt *parseFutureStmt();
  Stmt *parseReturnStmt();
  /// Assignment or expression statement, without the trailing ';'.
  Stmt *parseSimpleStmt();
  Expr *parseExpr();
  Expr *parseBinaryRhs(int MinPrec, Expr *Lhs);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  /// Fabricates a placeholder expression after an error.
  Expr *errorExpr(SourceLoc Loc);
  /// Skips tokens until a statement boundary to recover from errors.
  void skipToStmtBoundary();

  AstContext &Ctx;
  DiagnosticsEngine &Diags;
  Lexer Lex;
  Token Tok;
};

} // namespace tdr

#endif // TDR_FRONTEND_PARSER_H
