//===- Lexer.h - HJ-mini lexer -----------------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for HJ-mini. Supports // line comments and
/// /* block */ comments, decimal and hex integer literals, and floating
/// point literals with fraction and/or exponent.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FRONTEND_LEXER_H
#define TDR_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string_view>

namespace tdr {

class DiagnosticsEngine;

/// Produces one token at a time from a source buffer.
class Lexer {
public:
  Lexer(std::string_view Buffer, DiagnosticsEngine &Diags)
      : Buffer(Buffer), Diags(Diags) {}

  /// Lexes the next token. At end of input returns Eof tokens forever.
  Token lex();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
  }
  char advance() { return Buffer[Pos++]; }
  bool match(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void skipTrivia();
  Token makeToken(TokenKind K, uint32_t Begin) const;
  Token lexNumber();
  Token lexIdentifier();

  std::string_view Buffer;
  DiagnosticsEngine &Diags;
  uint32_t Pos = 0;
};

} // namespace tdr

#endif // TDR_FRONTEND_LEXER_H
