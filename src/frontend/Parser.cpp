//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <vector>

using namespace tdr;

Parser::Parser(std::string_view Buffer, AstContext &Ctx,
               DiagnosticsEngine &Diags)
    : Ctx(Ctx), Diags(Diags), Lex(Buffer, Diags) {
  Tok = Lex.lex();
}

void Parser::consume() { Tok = Lex.lex(); }

bool Parser::consumeIf(TokenKind K) {
  if (Tok.isNot(K))
    return false;
  consume();
  return true;
}

namespace {

/// Levenshtein distance, capped: returns Limit + 1 as soon as the distance
/// is known to exceed \p Limit.
unsigned editDistance(std::string_view A, std::string_view B, unsigned Limit) {
  size_t LA = A.size(), LB = B.size();
  size_t Diff = LA > LB ? LA - LB : LB - LA;
  if (Diff > Limit)
    return Limit + 1;
  std::vector<unsigned> Row(LB + 1);
  for (size_t J = 0; J <= LB; ++J)
    Row[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= LA; ++I) {
    unsigned Prev = Row[0];
    Row[0] = static_cast<unsigned>(I);
    unsigned Best = Row[0];
    for (size_t J = 1; J <= LB; ++J) {
      unsigned Cur = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1,
                         Prev + (A[I - 1] == B[J - 1] ? 0u : 1u)});
      Prev = Cur;
      Best = std::min(Best, Row[J]);
    }
    if (Best > Limit)
      return Limit + 1;
  }
  return Row[LB];
}

/// Returns the keyword spelling nearest to \p Text within edit distance 2,
/// or an empty view when nothing is close enough.
std::string_view suggestKeyword(std::string_view Text) {
  std::string_view Best;
  unsigned BestDist = 3;
  for (const auto &KW : keywordTable()) {
    unsigned D = editDistance(Text, KW.first, 2);
    if (D < BestDist) {
      BestDist = D;
      Best = KW.first;
    }
  }
  return Best;
}

/// Appends "; did you mean 'kw'?" to \p Message when \p Tok is an
/// identifier that looks like a misspelled keyword.
void appendKeywordHint(std::string &Message, const Token &Tok) {
  if (Tok.isNot(TokenKind::Identifier))
    return;
  std::string_view Sug = suggestKeyword(Tok.Text);
  if (!Sug.empty())
    Message += strFormat("; did you mean '%.*s'?",
                         static_cast<int>(Sug.size()), Sug.data());
}

} // namespace

bool Parser::expect(TokenKind K, const char *Context) {
  if (Tok.is(K))
    return true;
  std::string Message =
      strFormat("expected %s %s, found %s", tokenKindName(K), Context,
                tokenKindName(Tok.Kind));
  appendKeywordHint(Message, Tok);
  Diags.error(Tok.Loc, std::move(Message));
  return false;
}

bool Parser::expectAndConsume(TokenKind K, const char *Context) {
  if (!expect(K, Context))
    return false;
  consume();
  return true;
}

void Parser::skipToStmtBoundary() {
  unsigned Depth = 0;
  while (Tok.isNot(TokenKind::Eof)) {
    if (Tok.is(TokenKind::LBrace))
      ++Depth;
    if (Tok.is(TokenKind::RBrace)) {
      if (Depth == 0)
        return;
      --Depth;
    }
    if (Tok.is(TokenKind::Semi) && Depth == 0) {
      consume();
      return;
    }
    consume();
  }
}

Program *Parser::parseProgram() {
  obs::ScopedSpan Span(obs::phase::Parse);
  // Per-call lookups (not statics): see the scoping contract in
  // obs/Metrics.h. One parse runs within one registry scope.
  obs::Counter &CFuncs = obs::counter("frontend.funcs");
  obs::Counter &CGlobals = obs::counter("frontend.globals");
  obs::counter("frontend.parses").inc();
  Program *P = Ctx.createProgram();
  while (Tok.isNot(TokenKind::Eof)) {
    if (Tok.is(TokenKind::KwVar)) {
      CGlobals.inc();
      parseGlobalVar(*P);
    } else if (Tok.is(TokenKind::KwFunc)) {
      CFuncs.inc();
      parseFuncDecl(*P);
    } else {
      std::string Message =
          strFormat("expected 'var' or 'func' at top level, found %s",
                    tokenKindName(Tok.Kind));
      appendKeywordHint(Message, Tok);
      Diags.error(Tok.Loc, std::move(Message));
      consume();
      skipToStmtBoundary();
    }
  }
  return P;
}

void Parser::parseGlobalVar(Program &P) {
  SourceLoc Loc = Tok.Loc;
  consume(); // var
  if (!expect(TokenKind::Identifier, "in global variable declaration")) {
    skipToStmtBoundary();
    return;
  }
  std::string Name = Tok.Text;
  consume();
  if (!expectAndConsume(TokenKind::Colon, "after global variable name")) {
    skipToStmtBoundary();
    return;
  }
  const Type *Ty = parseType();
  VarDecl *D = Ctx.createVarDecl(VarDecl::Kind::Global, std::move(Name), Ty, Loc);
  if (consumeIf(TokenKind::Assign))
    D->setInit(parseExpr());
  expectAndConsume(TokenKind::Semi, "after global variable declaration");
  P.globals().push_back(D);
}

void Parser::parseFuncDecl(Program &P) {
  SourceLoc Loc = Tok.Loc;
  consume(); // func
  if (!expect(TokenKind::Identifier, "in function declaration")) {
    skipToStmtBoundary();
    return;
  }
  std::string Name = Tok.Text;
  consume();
  expectAndConsume(TokenKind::LParen, "after function name");
  std::vector<VarDecl *> Params;
  if (Tok.isNot(TokenKind::RParen)) {
    do {
      if (!expect(TokenKind::Identifier, "in parameter list"))
        break;
      SourceLoc PLoc = Tok.Loc;
      std::string PName = Tok.Text;
      consume();
      expectAndConsume(TokenKind::Colon, "after parameter name");
      const Type *PTy = parseType();
      Params.push_back(
          Ctx.createVarDecl(VarDecl::Kind::Param, std::move(PName), PTy, PLoc));
    } while (consumeIf(TokenKind::Comma));
  }
  expectAndConsume(TokenKind::RParen, "after parameter list");
  const Type *Ret = Ctx.voidType();
  if (consumeIf(TokenKind::Colon))
    Ret = parseType();
  if (!expect(TokenKind::LBrace, "to begin function body")) {
    skipToStmtBoundary();
    return;
  }
  BlockStmt *Body = parseBlock();
  P.funcs().push_back(
      Ctx.createFuncDecl(std::move(Name), std::move(Params), Ret, Body, Loc));
}

const Type *Parser::parseType() {
  const Type *Base = nullptr;
  switch (Tok.Kind) {
  case TokenKind::KwInt:
    Base = Ctx.intType();
    break;
  case TokenKind::KwDouble:
    Base = Ctx.doubleType();
    break;
  case TokenKind::KwBool:
    Base = Ctx.boolType();
    break;
  case TokenKind::KwVoid:
    Base = Ctx.voidType();
    break;
  default: {
    std::string Message =
        strFormat("expected a type, found %s", tokenKindName(Tok.Kind));
    appendKeywordHint(Message, Tok);
    Diags.error(Tok.Loc, std::move(Message));
    return Ctx.intType();
  }
  }
  consume();
  while (Tok.is(TokenKind::LBracket)) {
    consume();
    expectAndConsume(TokenKind::RBracket, "in array type");
    Base = Ctx.arrayType(Base);
  }
  return Base;
}

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  expectAndConsume(TokenKind::LBrace, "to begin block");
  std::vector<Stmt *> Stmts;
  while (Tok.isNot(TokenKind::RBrace) && Tok.isNot(TokenKind::Eof))
    Stmts.push_back(parseStmt());
  expectAndConsume(TokenKind::RBrace, "to end block");
  return Ctx.createStmt<BlockStmt>(std::move(Stmts), Loc);
}

Stmt *Parser::parseStmt() {
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwVar:
    return parseVarDeclStmt();
  case TokenKind::KwIf:
    return parseIfStmt();
  case TokenKind::KwWhile:
    return parseWhileStmt();
  case TokenKind::KwFor:
    return parseForStmt();
  case TokenKind::KwReturn:
    return parseReturnStmt();
  case TokenKind::KwAsync: {
    SourceLoc Loc = Tok.Loc;
    consume();
    Stmt *Body = parseStmt();
    return Ctx.createStmt<AsyncStmt>(Body, Loc);
  }
  case TokenKind::KwFinish: {
    SourceLoc Loc = Tok.Loc;
    consume();
    Stmt *Body = parseStmt();
    return Ctx.createStmt<FinishStmt>(Body, Loc);
  }
  case TokenKind::KwIsolated: {
    SourceLoc Loc = Tok.Loc;
    consume();
    Stmt *Body = parseStmt();
    return Ctx.createStmt<IsolatedStmt>(Body, Loc);
  }
  case TokenKind::KwFuture:
    return parseFutureStmt();
  case TokenKind::KwForasync:
    return parseForasyncStmt();
  default: {
    bool WasIdent = Tok.is(TokenKind::Identifier);
    std::string LeadingName = Tok.Text;
    SourceLoc LeadingLoc = Tok.Loc;
    Stmt *S = parseSimpleStmt();
    if (!expectAndConsume(TokenKind::Semi, "after statement") && WasIdent) {
      // "asinc { ... }" parses as an identifier expression followed by a
      // block; point at the likely misspelled construct keyword.
      std::string_view Sug = suggestKeyword(LeadingName);
      if (!Sug.empty())
        Diags.note(LeadingLoc,
                   strFormat("did you mean '%.*s'?",
                             static_cast<int>(Sug.size()), Sug.data()));
    }
    return S;
  }
  }
}

Stmt *Parser::parseFutureStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // future
  std::string Name = "<error>";
  if (expect(TokenKind::Identifier, "in future declaration")) {
    Name = Tok.Text;
    consume();
  }
  expectAndConsume(TokenKind::Assign, "after future name");
  Expr *Init = parseExpr();
  expectAndConsume(TokenKind::Semi, "after future declaration");
  return Ctx.createStmt<FutureStmt>(std::move(Name), Init, Loc);
}

Stmt *Parser::parseForasyncStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // forasync
  expectAndConsume(TokenKind::LParen, "after 'forasync'");
  expectAndConsume(TokenKind::KwVar, "to declare the forasync loop variable");
  std::string Name = "<error>";
  if (expect(TokenKind::Identifier, "in forasync loop variable")) {
    Name = Tok.Text;
    consume();
  }
  expectAndConsume(TokenKind::Colon, "after forasync loop variable");
  if (Tok.is(TokenKind::KwInt))
    consume();
  else
    Diags.error(Tok.Loc, strFormat("forasync loop variable must be 'int', "
                                   "found %s",
                                   tokenKindName(Tok.Kind)));
  expectAndConsume(TokenKind::Assign, "in forasync lower bound");
  Expr *Lo = parseExpr();
  expectAndConsume(TokenKind::Semi, "after forasync lower bound");
  // The condition is restricted to "<loop-var> < <bound>".
  if (Tok.is(TokenKind::Identifier) && Tok.Text == Name)
    consume();
  else
    Diags.error(Tok.Loc,
                strFormat("forasync condition must test the loop variable "
                          "'%s'",
                          Name.c_str()));
  expectAndConsume(TokenKind::Less, "in forasync condition");
  Expr *Hi = parseExpr();
  expectAndConsume(TokenKind::Semi, "after forasync condition");
  // 'chunk' is a contextual keyword: it is an ordinary identifier
  // everywhere else.
  if (Tok.is(TokenKind::Identifier) && Tok.Text == "chunk")
    consume();
  else
    Diags.error(Tok.Loc, strFormat("expected 'chunk' in forasync header, "
                                   "found %s",
                                   tokenKindName(Tok.Kind)));
  Expr *Chunk = parseExpr();
  expectAndConsume(TokenKind::RParen, "after forasync header");
  Stmt *Body = parseStmt();
  return Ctx.createStmt<ForasyncStmt>(std::move(Name), Lo, Hi, Chunk, Body,
                                      Loc);
}

Stmt *Parser::parseVarDeclStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // var
  std::string Name = "<error>";
  if (expect(TokenKind::Identifier, "in variable declaration")) {
    Name = Tok.Text;
    consume();
  }
  expectAndConsume(TokenKind::Colon, "after variable name");
  const Type *Ty = parseType();
  Expr *Init = nullptr;
  if (consumeIf(TokenKind::Assign))
    Init = parseExpr();
  expectAndConsume(TokenKind::Semi, "after variable declaration");
  VarDecl *D = Ctx.createVarDecl(VarDecl::Kind::Local, std::move(Name), Ty, Loc);
  return Ctx.createStmt<VarDeclStmt>(D, Init, Loc);
}

Stmt *Parser::parseIfStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // if
  expectAndConsume(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expectAndConsume(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (consumeIf(TokenKind::KwElse))
    Else = parseStmt();
  return Ctx.createStmt<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseWhileStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // while
  expectAndConsume(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expectAndConsume(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStmt();
  return Ctx.createStmt<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseForStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // for
  expectAndConsume(TokenKind::LParen, "after 'for'");
  Stmt *Init = nullptr;
  if (Tok.isNot(TokenKind::Semi)) {
    if (Tok.is(TokenKind::KwVar)) {
      // parseVarDeclStmt consumes the ';' itself.
      Init = parseVarDeclStmt();
    } else {
      Init = parseSimpleStmt();
      expectAndConsume(TokenKind::Semi, "after for-init");
    }
  } else {
    consume(); // ';'
  }
  Expr *Cond = nullptr;
  if (Tok.isNot(TokenKind::Semi))
    Cond = parseExpr();
  expectAndConsume(TokenKind::Semi, "after for-condition");
  Stmt *Step = nullptr;
  if (Tok.isNot(TokenKind::RParen))
    Step = parseSimpleStmt();
  expectAndConsume(TokenKind::RParen, "after for header");
  Stmt *Body = parseStmt();
  return Ctx.createStmt<ForStmt>(Init, Cond, Step, Body, Loc);
}

Stmt *Parser::parseReturnStmt() {
  SourceLoc Loc = Tok.Loc;
  consume(); // return
  Expr *Value = nullptr;
  if (Tok.isNot(TokenKind::Semi))
    Value = parseExpr();
  expectAndConsume(TokenKind::Semi, "after return statement");
  return Ctx.createStmt<ReturnStmt>(Value, Loc);
}

namespace {
/// Maps a compound-assignment token to its binary op, or returns false.
bool compoundOpFor(TokenKind K, BinaryOp &Op) {
  switch (K) {
  case TokenKind::PlusAssign: Op = BinaryOp::Add; return true;
  case TokenKind::MinusAssign: Op = BinaryOp::Sub; return true;
  case TokenKind::StarAssign: Op = BinaryOp::Mul; return true;
  case TokenKind::SlashAssign: Op = BinaryOp::Div; return true;
  case TokenKind::PercentAssign: Op = BinaryOp::Mod; return true;
  default: return false;
  }
}
} // namespace

Stmt *Parser::parseSimpleStmt() {
  SourceLoc Loc = Tok.Loc;
  Expr *E = parseExpr();
  if (consumeIf(TokenKind::Assign)) {
    Expr *Value = parseExpr();
    return Ctx.createStmt<AssignStmt>(E, Value, Loc);
  }
  BinaryOp Op;
  if (compoundOpFor(Tok.Kind, Op)) {
    consume();
    Expr *Value = parseExpr();
    auto *A = Ctx.createStmt<AssignStmt>(E, Value, Loc);
    A->setCompound(Op);
    return A;
  }
  return Ctx.createStmt<ExprStmt>(E, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
/// Precedence of a binary operator token; 0 when not a binary operator.
int binaryPrecedence(TokenKind K, BinaryOp &Op) {
  switch (K) {
  case TokenKind::PipePipe: Op = BinaryOp::LOr; return 1;
  case TokenKind::AmpAmp: Op = BinaryOp::LAnd; return 2;
  case TokenKind::Pipe: Op = BinaryOp::BOr; return 3;
  case TokenKind::Caret: Op = BinaryOp::BXor; return 4;
  case TokenKind::Amp: Op = BinaryOp::BAnd; return 5;
  case TokenKind::EqEq: Op = BinaryOp::Eq; return 6;
  case TokenKind::NotEq: Op = BinaryOp::Ne; return 6;
  case TokenKind::Less: Op = BinaryOp::Lt; return 7;
  case TokenKind::LessEq: Op = BinaryOp::Le; return 7;
  case TokenKind::Greater: Op = BinaryOp::Gt; return 7;
  case TokenKind::GreaterEq: Op = BinaryOp::Ge; return 7;
  case TokenKind::Shl: Op = BinaryOp::Shl; return 8;
  case TokenKind::Shr: Op = BinaryOp::Shr; return 8;
  case TokenKind::Plus: Op = BinaryOp::Add; return 9;
  case TokenKind::Minus: Op = BinaryOp::Sub; return 9;
  case TokenKind::Star: Op = BinaryOp::Mul; return 10;
  case TokenKind::Slash: Op = BinaryOp::Div; return 10;
  case TokenKind::Percent: Op = BinaryOp::Mod; return 10;
  default: return 0;
  }
}
} // namespace

Expr *Parser::parseExpr() { return parseBinaryRhs(1, parseUnary()); }

Expr *Parser::parseBinaryRhs(int MinPrec, Expr *Lhs) {
  while (true) {
    BinaryOp Op;
    int Prec = binaryPrecedence(Tok.Kind, Op);
    if (Prec < MinPrec)
      return Lhs;
    SourceLoc OpLoc = Tok.Loc;
    consume();
    Expr *Rhs = parseUnary();
    BinaryOp NextOp;
    int NextPrec = binaryPrecedence(Tok.Kind, NextOp);
    if (NextPrec > Prec)
      Rhs = parseBinaryRhs(Prec + 1, Rhs);
    Lhs = Ctx.createExpr<BinaryExpr>(Op, Lhs, Rhs, OpLoc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = Tok.Loc;
  if (consumeIf(TokenKind::Minus))
    return Ctx.createExpr<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  if (consumeIf(TokenKind::Bang))
    return Ctx.createExpr<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  if (consumeIf(TokenKind::Tilde))
    return Ctx.createExpr<UnaryExpr>(UnaryOp::BNot, parseUnary(), Loc);
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    if (Tok.is(TokenKind::LBracket)) {
      SourceLoc Loc = Tok.Loc;
      consume();
      Expr *Index = parseExpr();
      expectAndConsume(TokenKind::RBracket, "after array index");
      E = Ctx.createExpr<IndexExpr>(E, Index, Loc);
      continue;
    }
    return E;
  }
}

Expr *Parser::errorExpr(SourceLoc Loc) {
  return Ctx.createExpr<IntLitExpr>(0, Loc);
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    int64_t V = Tok.IntValue;
    consume();
    return Ctx.createExpr<IntLitExpr>(V, Loc);
  }
  case TokenKind::DoubleLiteral: {
    double V = Tok.DoubleValue;
    consume();
    return Ctx.createExpr<DoubleLitExpr>(V, Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return Ctx.createExpr<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return Ctx.createExpr<BoolLitExpr>(false, Loc);
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expectAndConsume(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::KwNew: {
    consume();
    const Type *Elem = nullptr;
    switch (Tok.Kind) {
    case TokenKind::KwInt: Elem = Ctx.intType(); break;
    case TokenKind::KwDouble: Elem = Ctx.doubleType(); break;
    case TokenKind::KwBool: Elem = Ctx.boolType(); break;
    default:
      Diags.error(Tok.Loc, "expected scalar element type after 'new'");
      return errorExpr(Loc);
    }
    consume();
    std::vector<Expr *> Dims;
    if (!expect(TokenKind::LBracket, "after 'new' element type"))
      return errorExpr(Loc);
    while (Tok.is(TokenKind::LBracket)) {
      consume();
      Dims.push_back(parseExpr());
      expectAndConsume(TokenKind::RBracket, "after array dimension");
    }
    return Ctx.createExpr<NewArrayExpr>(Elem, std::move(Dims), Loc);
  }
  case TokenKind::Identifier: {
    std::string Name = Tok.Text;
    consume();
    if (Tok.is(TokenKind::LParen)) {
      consume();
      std::vector<Expr *> Args;
      if (Tok.isNot(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (consumeIf(TokenKind::Comma));
      }
      expectAndConsume(TokenKind::RParen, "after call arguments");
      return Ctx.createExpr<CallExpr>(std::move(Name), std::move(Args), Loc);
    }
    return Ctx.createExpr<VarRefExpr>(std::move(Name), Loc);
  }
  default:
    Diags.error(Loc, strFormat("expected an expression, found %s",
                               tokenKindName(Tok.Kind)));
    consume();
    return errorExpr(Loc);
  }
}
