//===- Token.h - HJ-mini tokens ----------------------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the HJ-mini lexer.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_FRONTEND_TOKEN_H
#define TDR_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tdr {

enum class TokenKind {
  // Special
  Eof, Unknown,
  // Literals and identifiers
  Identifier, IntLiteral, DoubleLiteral,
  // Keywords
  KwVar, KwFunc, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwAsync, KwFinish,
  KwFuture, KwIsolated, KwForasync,
  KwNew, KwTrue, KwFalse, KwInt, KwDouble, KwBool, KwVoid,
  // Punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Comma, Semi, Colon,
  // Operators
  Plus, Minus, Star, Slash, Percent,
  Less, LessEq, Greater, GreaterEq, EqEq, NotEq,
  AmpAmp, PipePipe, Bang,
  Amp, Pipe, Caret, Shl, Shr, Tilde,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign
};

/// Returns a human-readable name for diagnostics ("';'", "identifier", ...).
const char *tokenKindName(TokenKind K);

/// The full keyword table (spelling -> kind), shared between the lexer and
/// the parser's did-you-mean keyword suggestions.
const std::vector<std::pair<std::string_view, TokenKind>> &keywordTable();

/// One lexed token. Literal payloads are stored decoded.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;     ///< identifier spelling (empty otherwise)
  int64_t IntValue = 0; ///< valid for IntLiteral
  double DoubleValue = 0.0; ///< valid for DoubleLiteral

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace tdr

#endif // TDR_FRONTEND_TOKEN_H
