//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Diagnostics.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace tdr;

const char *tdr::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof: return "end of input";
  case TokenKind::Unknown: return "invalid character";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::DoubleLiteral: return "floating point literal";
  case TokenKind::KwVar: return "'var'";
  case TokenKind::KwFunc: return "'func'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwAsync: return "'async'";
  case TokenKind::KwFinish: return "'finish'";
  case TokenKind::KwFuture: return "'future'";
  case TokenKind::KwIsolated: return "'isolated'";
  case TokenKind::KwForasync: return "'forasync'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwBool: return "'bool'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semi: return "';'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Shl: return "'<<'";
  case TokenKind::Shr: return "'>>'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::Assign: return "'='";
  case TokenKind::PlusAssign: return "'+='";
  case TokenKind::MinusAssign: return "'-='";
  case TokenKind::StarAssign: return "'*='";
  case TokenKind::SlashAssign: return "'/='";
  case TokenKind::PercentAssign: return "'%='";
  }
  return "token";
}

void Lexer::skipTrivia() {
  while (Pos < Buffer.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Buffer.size() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t Begin = Pos;
      Pos += 2;
      while (Pos < Buffer.size() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (Pos >= Buffer.size()) {
        Diags.error(SourceLoc(Begin), "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind K, uint32_t Begin) const {
  Token T;
  T.Kind = K;
  T.Loc = SourceLoc(Begin);
  return T;
}

Token Lexer::lexNumber() {
  uint32_t Begin = Pos;
  // Hex integer.
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    uint32_t DigitsBegin = Pos;
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    Token T = makeToken(TokenKind::IntLiteral, Begin);
    if (Pos == DigitsBegin) {
      Diags.error(SourceLoc(Begin), "hex literal requires at least one digit");
      return T;
    }
    std::string Digits(Buffer.substr(DigitsBegin, Pos - DigitsBegin));
    T.IntValue = static_cast<int64_t>(std::strtoull(Digits.c_str(), nullptr, 16));
    return T;
  }

  while (std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;
  bool IsDouble = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    ++Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
  }
  if (peek() == 'e' || peek() == 'E') {
    unsigned Ahead = 1;
    if (peek(1) == '+' || peek(1) == '-')
      Ahead = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(Ahead)))) {
      IsDouble = true;
      Pos += Ahead;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
  }
  std::string Spelling(Buffer.substr(Begin, Pos - Begin));
  if (IsDouble) {
    Token T = makeToken(TokenKind::DoubleLiteral, Begin);
    T.DoubleValue = std::strtod(Spelling.c_str(), nullptr);
    return T;
  }
  Token T = makeToken(TokenKind::IntLiteral, Begin);
  T.IntValue = static_cast<int64_t>(std::strtoll(Spelling.c_str(), nullptr, 10));
  return T;
}

const std::vector<std::pair<std::string_view, TokenKind>> &
tdr::keywordTable() {
  static const std::vector<std::pair<std::string_view, TokenKind>> Keywords = {
      {"var", TokenKind::KwVar},       {"func", TokenKind::KwFunc},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn}, {"async", TokenKind::KwAsync},
      {"finish", TokenKind::KwFinish}, {"future", TokenKind::KwFuture},
      {"isolated", TokenKind::KwIsolated},
      {"forasync", TokenKind::KwForasync},
      {"new", TokenKind::KwNew},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"int", TokenKind::KwInt},
      {"double", TokenKind::KwDouble}, {"bool", TokenKind::KwBool},
      {"void", TokenKind::KwVoid}};
  return Keywords;
}

Token Lexer::lexIdentifier() {
  static const std::unordered_map<std::string_view, TokenKind> Keywords(
      keywordTable().begin(), keywordTable().end());

  uint32_t Begin = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    ++Pos;
  std::string_view Spelling = Buffer.substr(Begin, Pos - Begin);
  auto It = Keywords.find(Spelling);
  if (It != Keywords.end())
    return makeToken(It->second, Begin);
  Token T = makeToken(TokenKind::Identifier, Begin);
  T.Text = std::string(Spelling);
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  uint32_t Begin = Pos;
  if (Pos >= Buffer.size())
    return makeToken(TokenKind::Eof, Begin);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();

  advance();
  switch (C) {
  case '(': return makeToken(TokenKind::LParen, Begin);
  case ')': return makeToken(TokenKind::RParen, Begin);
  case '{': return makeToken(TokenKind::LBrace, Begin);
  case '}': return makeToken(TokenKind::RBrace, Begin);
  case '[': return makeToken(TokenKind::LBracket, Begin);
  case ']': return makeToken(TokenKind::RBracket, Begin);
  case ',': return makeToken(TokenKind::Comma, Begin);
  case ';': return makeToken(TokenKind::Semi, Begin);
  case ':': return makeToken(TokenKind::Colon, Begin);
  case '~': return makeToken(TokenKind::Tilde, Begin);
  case '+':
    return makeToken(match('=') ? TokenKind::PlusAssign : TokenKind::Plus,
                     Begin);
  case '-':
    return makeToken(match('=') ? TokenKind::MinusAssign : TokenKind::Minus,
                     Begin);
  case '*':
    return makeToken(match('=') ? TokenKind::StarAssign : TokenKind::Star,
                     Begin);
  case '/':
    return makeToken(match('=') ? TokenKind::SlashAssign : TokenKind::Slash,
                     Begin);
  case '%':
    return makeToken(match('=') ? TokenKind::PercentAssign
                                : TokenKind::Percent,
                     Begin);
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEq, Begin);
    if (match('<'))
      return makeToken(TokenKind::Shl, Begin);
    return makeToken(TokenKind::Less, Begin);
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEq, Begin);
    if (match('>'))
      return makeToken(TokenKind::Shr, Begin);
    return makeToken(TokenKind::Greater, Begin);
  case '=':
    return makeToken(match('=') ? TokenKind::EqEq : TokenKind::Assign, Begin);
  case '!':
    return makeToken(match('=') ? TokenKind::NotEq : TokenKind::Bang, Begin);
  case '&':
    return makeToken(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Begin);
  case '|':
    return makeToken(match('|') ? TokenKind::PipePipe : TokenKind::Pipe,
                     Begin);
  case '^':
    return makeToken(TokenKind::Caret, Begin);
  default:
    Diags.error(SourceLoc(Begin),
                std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Begin);
  }
}
