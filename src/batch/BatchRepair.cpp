//===- BatchRepair.cpp ----------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "batch/BatchRepair.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Timer.h"

#include <atomic>
#include <memory>
#include <thread>

using namespace tdr;

void tdr::runJobsOrdered(size_t N, unsigned Workers,
                         const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Workers == 0)
    Workers = 1;
  if (static_cast<size_t>(Workers) > N)
    Workers = static_cast<unsigned>(N);

  std::atomic<size_t> Next{0};
  auto WorkerLoop = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed))
      Fn(I);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Workers);
  for (unsigned W = 0; W != Workers; ++W)
    Threads.emplace_back(WorkerLoop);
  for (std::thread &T : Threads)
    T.join();
}

BatchSummary BatchRepairRunner::run(const std::vector<RepairJob> &Jobs) const {
  obs::ScopedSpan Span(obs::phase::BatchRun);
  obs::counter("batch.runs").inc();

  // The registry metrics of the whole batch fold into: captured before the
  // workers start, because current() on a worker thread would resolve to
  // the worker's own scope.
  obs::MetricsRegistry &Parent = obs::MetricsRegistry::current();

  BatchSummary Summary;
  Summary.Results.resize(Jobs.size());
  std::vector<std::unique_ptr<obs::MetricsRegistry>> JobRegistries(
      Jobs.size());

  runJobsOrdered(Jobs.size(), Workers, [&](size_t I) {
    auto Registry = std::make_unique<obs::MetricsRegistry>();
    obs::ScopedMetrics Scope(*Registry);
    BatchJobResult &R = Summary.Results[I];
    R.Name = Jobs[I].Name;
    // Async ('b'/'e') trace events keyed by the job index: each job gets
    // its own lane in a Chrome/Perfetto view of the batch, spanning its
    // whole repair regardless of which worker thread picked it up.
    obs::Tracer::global().recordAsyncBegin("job:" + Jobs[I].Name, "batch", I);
    Timer JobTimer;
    R.Repair = repairSource(Jobs[I].Source, R.RepairedSource, Jobs[I].Opts);
    // Lands in the job's own registry; the submission-order merge below
    // folds the samples into the parent's batch.job_ms histogram, so
    // percentiles are deterministic for a given job set.
    obs::histogram("batch.job_ms").observe(JobTimer.elapsedMs());
    obs::Tracer::global().recordAsyncEnd("job:" + Jobs[I].Name, "batch", I);
    R.MetricsJson = Registry->dumpJson();
    JobRegistries[I] = std::move(Registry);
  });

  // Submission-order merge: counters add (order-independent), gauges take
  // the last job's value — the same value a sequential run would leave.
  for (size_t I = 0; I != Jobs.size(); ++I) {
    Parent.mergeFrom(*JobRegistries[I]);
    if (Summary.Results[I].Repair.Success)
      ++Summary.NumSucceeded;
    else
      ++Summary.NumFailed;
  }
  Parent.counter("batch.jobs").inc(Jobs.size());
  return Summary;
}
