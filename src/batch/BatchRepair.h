//===- BatchRepair.h - Parallel batch repair runner --------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs many (program source, input) repair jobs concurrently on a fixed
/// worker pool — the production-scale mode of operation (ROADMAP;
/// DR.FIX-style batching), enabled by the re-entrant pipeline:
///
///  * every job gets its own SourceManager/AstContext/Parser/repairProgram
///    stack (repairSource), so jobs share no mutable program state;
///  * every job gets its own obs::MetricsRegistry, installed with
///    ScopedMetrics on the worker thread, so RepairStats and the detect.*
///    gauges are attributed to the run that produced them;
///  * results are collected in submission order and the per-job registries
///    are folded into the caller's registry in that same order, so the
///    batch output — repaired sources, per-run stats, and the merged
///    metrics dump — is byte-identical to running the jobs sequentially.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_BATCH_BATCHREPAIR_H
#define TDR_BATCH_BATCHREPAIR_H

#include "repair/RepairDriver.h"

#include <functional>
#include <string>
#include <vector>

namespace tdr {

/// One unit of batch work: repair \p Source under \p Opts.
struct RepairJob {
  /// Display name (e.g. the manifest path the source came from).
  std::string Name;
  /// HJ-mini program text.
  std::string Source;
  RepairOptions Opts;
};

/// Outcome of one job, in submission order.
struct BatchJobResult {
  std::string Name;
  RepairResult Repair;
  /// Pretty-printed repaired program (valid even when the repair failed;
  /// it then reflects however far the repair got).
  std::string RepairedSource;
  /// JSON dump of the job's private metrics registry.
  std::string MetricsJson;
};

/// Outcome of a whole batch.
struct BatchSummary {
  std::vector<BatchJobResult> Results; ///< parallel to the submitted jobs
  size_t NumSucceeded = 0;
  size_t NumFailed = 0;
};

/// Ordered parallel-for: invokes Fn(0..N-1), each index exactly once, on a
/// pool of \p Workers threads (the calling thread does not participate).
/// Returns after every invocation completed. Fn must be safe to call
/// concurrently for distinct indices; Workers == 1 degenerates to a serial
/// loop on one worker thread.
void runJobsOrdered(size_t N, unsigned Workers,
                    const std::function<void(size_t)> &Fn);

/// The batch runner. Stateless between run() calls; the worker pool is
/// created per batch so a runner can be kept around cheaply.
class BatchRepairRunner {
public:
  /// \p Workers = number of concurrent repair jobs (clamped to >= 1).
  explicit BatchRepairRunner(unsigned Workers) : Workers(Workers ? Workers : 1) {}

  /// Repairs every job and returns results in submission order. Each
  /// job's metrics land in its own registry (reported per job as
  /// MetricsJson) and are merged — in submission order — into the registry
  /// that was current() on the calling thread, so a surrounding
  /// --metrics-json dump still sees the whole batch.
  BatchSummary run(const std::vector<RepairJob> &Jobs) const;

  unsigned numWorkers() const { return Workers; }

private:
  unsigned Workers;
};

} // namespace tdr

#endif // TDR_BATCH_BATCHREPAIR_H
