//===- Trace.h - Phase-scoped tracing in Chrome trace format -----*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase-scoped tracing for the repair pipeline. Hook points open RAII
/// ScopedSpans ("parse", "sema", "detect", "placement", ...); the global
/// Tracer buffers the completed spans and serializes them as Chrome
/// `trace_event` JSON (loadable in chrome://tracing or Perfetto) or as a
/// one-event-per-line JSONL stream.
///
/// Tracing is off by default and must stay near-free when off: a disabled
/// ScopedSpan costs one relaxed atomic load and records nothing. Enable it
/// programmatically (Tracer::global().enable()), via `tdr ... --trace
/// out.json`, or by setting the TDR_TRACE environment variable to an
/// output path — the env var enables tracing in any tdr binary (benches
/// included) and flushes the trace at process exit.
///
/// Timestamps come from Timer::nowNs(), the same monotonic clock the
/// benchmark harnesses time with, so span durations and bench columns
/// agree.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_OBS_TRACE_H
#define TDR_OBS_TRACE_H

#include "obs/Phases.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tdr {
namespace obs {

/// One buffered trace event. Ph follows the Chrome trace_event phase
/// codes: 'X' complete (span), 'i' instant, 'b'/'e' async begin/end.
struct TraceEvent {
  std::string Name;
  const char *Cat = "tdr"; ///< static category string
  uint64_t TsNs = 0;       ///< start time, Timer::nowNs()
  uint64_t DurNs = 0;      ///< duration ('X' events; 0 for instants)
  uint64_t Id = 0;         ///< async event id ('b'/'e' events)
  uint32_t Tid = 0;        ///< small per-thread id
  char Ph = 'X';
};

/// Buffers trace events and renders them. Thread safe.
class Tracer {
public:
  /// The process-wide tracer. First use reads TDR_TRACE; never destroyed.
  static Tracer &global();

  /// The single branch every hook point takes when tracing is off.
  static bool enabled() {
    return global().EnabledFlag.load(std::memory_order_relaxed);
  }

  void enable() { EnabledFlag.store(true, std::memory_order_relaxed); }
  void disable() { EnabledFlag.store(false, std::memory_order_relaxed); }

  /// Records a completed span [StartNs, EndNs] on the calling thread.
  void recordSpan(std::string Name, const char *Cat, uint64_t StartNs,
                  uint64_t EndNs);
  /// Records an instant event at the current time.
  void recordInstant(std::string Name, const char *Cat = "tdr");
  /// Records an async begin/end pair boundary ('b'/'e'). Events with the
  /// same Name+Cat+Id form one async lane in Perfetto — batch jobs use the
  /// job index as Id so `tdr batch --jobs N` renders per-job lanes even
  /// when a worker thread interleaves several jobs.
  void recordAsyncBegin(std::string Name, const char *Cat, uint64_t Id);
  void recordAsyncEnd(std::string Name, const char *Cat, uint64_t Id);

  size_t numEvents() const;
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]} with microsecond
  /// timestamps, loadable in chrome://tracing / Perfetto.
  std::string renderChromeJson() const;
  /// One JSON object per line (event sink for log shippers).
  std::string renderJsonl() const;

  bool writeChromeTrace(const std::string &Path) const;
  bool writeJsonl(const std::string &Path) const;
  /// Dispatches on extension: ".jsonl" writes JSONL, anything else Chrome
  /// trace JSON.
  bool writeTo(const std::string &Path) const;

private:
  Tracer();

  std::atomic<bool> EnabledFlag{false};
  std::string EnvSinkPath; ///< TDR_TRACE target flushed at exit
  mutable std::mutex M;
  std::vector<TraceEvent> Events;

  friend void flushEnvSink();
};

/// RAII phase span. When tracing is disabled at construction the whole
/// object is a no-op (one relaxed load, no clock reads).
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name, const char *Cat = "tdr")
      : Name(Name), Cat(Cat), Active(Tracer::enabled()),
        StartNs(Active ? Timer::nowNs() : 0) {}

  /// The preferred form: a phase registered in Phases.def, so the name is
  /// shared with the trace schema checker.
  explicit ScopedSpan(const PhaseInfo &P) : ScopedSpan(P.Name, P.Cat) {}

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  ~ScopedSpan() {
    if (Active)
      Tracer::global().recordSpan(Name, Cat, StartNs, Timer::nowNs());
  }

private:
  const char *Name;
  const char *Cat;
  bool Active;
  uint64_t StartNs;
};

} // namespace obs
} // namespace tdr

#endif // TDR_OBS_TRACE_H
