//===- Trace.cpp ----------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace tdr;
using namespace tdr::obs;

namespace {

/// Small dense per-thread ids so traces group spans by thread.
uint32_t currentTid() {
  static std::atomic<uint32_t> NextTid{0};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

/// One trace_event object. Timestamps are microseconds in Chrome's format;
/// keep nanosecond precision with a fractional part.
void appendEvent(std::string &Out, const TraceEvent &E) {
  char Buf[128];
  Out += "{\"name\":";
  appendJsonString(Out, E.Name);
  Out += ",\"cat\":";
  appendJsonString(Out, E.Cat);
  std::snprintf(Buf, sizeof(Buf),
                ",\"ph\":\"%c\",\"ts\":%llu.%03llu", E.Ph,
                static_cast<unsigned long long>(E.TsNs / 1000),
                static_cast<unsigned long long>(E.TsNs % 1000));
  Out += Buf;
  if (E.Ph == 'X') {
    std::snprintf(Buf, sizeof(Buf), ",\"dur\":%llu.%03llu",
                  static_cast<unsigned long long>(E.DurNs / 1000),
                  static_cast<unsigned long long>(E.DurNs % 1000));
    Out += Buf;
  }
  if (E.Ph == 'b' || E.Ph == 'e') {
    std::snprintf(Buf, sizeof(Buf), ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(E.Id));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), ",\"pid\":1,\"tid\":%u}", E.Tid);
  Out += Buf;
}

} // namespace

namespace tdr {
namespace obs {
/// atexit hook for the TDR_TRACE env sink. Registered from the Tracer
/// constructor, so it runs while the (leaked) tracer is still alive.
void flushEnvSink() {
  Tracer &T = Tracer::global();
  if (T.EnvSinkPath.empty())
    return;
  if (T.writeTo(T.EnvSinkPath))
    std::fprintf(stderr, "tdr: wrote trace to %s (%zu events)\n",
                 T.EnvSinkPath.c_str(), T.numEvents());
  else
    std::fprintf(stderr, "tdr: failed to write trace to %s\n",
                 T.EnvSinkPath.c_str());
}
} // namespace obs
} // namespace tdr

Tracer::Tracer() {
  if (const char *Env = std::getenv("TDR_TRACE"); Env && *Env) {
    EnvSinkPath = Env;
    EnabledFlag.store(true, std::memory_order_relaxed);
    std::atexit(flushEnvSink);
  }
}

Tracer &Tracer::global() {
  // Leaked on purpose: the atexit env-sink flush must outlive static
  // destruction, and hook sites may race shutdown.
  static Tracer *T = new Tracer();
  return *T;
}

void Tracer::recordSpan(std::string Name, const char *Cat, uint64_t StartNs,
                        uint64_t EndNs) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.TsNs = StartNs;
  E.DurNs = EndNs >= StartNs ? EndNs - StartNs : 0;
  E.Tid = currentTid();
  E.Ph = 'X';
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void Tracer::recordInstant(std::string Name, const char *Cat) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.TsNs = Timer::nowNs();
  E.Tid = currentTid();
  E.Ph = 'i';
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void Tracer::recordAsyncBegin(std::string Name, const char *Cat,
                              uint64_t Id) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.TsNs = Timer::nowNs();
  E.Id = Id;
  E.Tid = currentTid();
  E.Ph = 'b';
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void Tracer::recordAsyncEnd(std::string Name, const char *Cat, uint64_t Id) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.TsNs = Timer::nowNs();
  E.Id = Id;
  E.Tid = currentTid();
  E.Ph = 'e';
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

size_t Tracer::numEvents() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Events.clear();
}

std::string Tracer::renderChromeJson() const {
  std::vector<TraceEvent> Snap = snapshot();
  std::string Out = "{\"traceEvents\":[";
  for (size_t I = 0; I != Snap.size(); ++I) {
    Out += I ? ",\n  " : "\n  ";
    appendEvent(Out, Snap[I]);
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

std::string Tracer::renderJsonl() const {
  std::vector<TraceEvent> Snap = snapshot();
  std::string Out;
  for (const TraceEvent &E : Snap) {
    appendEvent(Out, E);
    Out += '\n';
  }
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << renderChromeJson();
  return static_cast<bool>(Out);
}

bool Tracer::writeJsonl(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << renderJsonl();
  return static_cast<bool>(Out);
}

bool Tracer::writeTo(const std::string &Path) const {
  bool Jsonl =
      Path.size() > 6 && Path.compare(Path.size() - 6, 6, ".jsonl") == 0;
  return Jsonl ? writeJsonl(Path) : writeChromeTrace(Path);
}
