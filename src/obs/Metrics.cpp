//===- Metrics.cpp --------------------------------------------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

using namespace tdr;
using namespace tdr::obs;

double Histogram::Snapshot::percentile(double P) const {
  if (Samples.empty())
    return 0;
  std::vector<double> Sorted(Samples);
  std::sort(Sorted.begin(), Sorted.end());
  P = std::min(std::max(P, 0.0), 100.0);
  // Nearest rank: ceil(P/100 * N), 1-based; P=0 maps to the minimum.
  size_t Rank = static_cast<size_t>(
      std::ceil(P / 100.0 * static_cast<double>(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  return Sorted[Rank - 1];
}

namespace {

/// Knuth's MMIX LCG; the high bits are the usable ones.
uint64_t lcgNext(uint64_t &State) {
  State = State * 6364136223846793005ull + 1442695040888963407ull;
  return State >> 33;
}

/// Keeps \p Keep evenly-spaced elements of \p In (deterministic thinning
/// for count-proportional merges).
void appendSpaced(std::vector<double> &Out, const std::vector<double> &In,
                  size_t Keep) {
  if (Keep >= In.size()) {
    Out.insert(Out.end(), In.begin(), In.end());
    return;
  }
  for (size_t I = 0; I != Keep; ++I)
    Out.push_back(In[I * In.size() / Keep]);
}

} // namespace

void Histogram::observe(double X) {
  std::lock_guard<std::mutex> Lock(M);
  if (S.Count == 0) {
    S.Min = S.Max = X;
  } else {
    S.Min = std::min(S.Min, X);
    S.Max = std::max(S.Max, X);
  }
  ++S.Count;
  S.Sum += X;
  // Algorithm R: the i-th observation replaces a random reservoir slot
  // with probability MaxSamples/i, so every observation so far is equally
  // likely to be retained. The LCG advances once per overflowing
  // observation, making the kept set a pure function of the sequence.
  if (S.Samples.size() < MaxSamples) {
    S.Samples.push_back(X);
  } else {
    uint64_t J = lcgNext(Rng) % S.Count;
    if (J < MaxSamples)
      S.Samples[J] = X;
  }
}

void Histogram::merge(const Snapshot &Other) {
  if (Other.Count == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  if (S.Count == 0) {
    S = Other;
    if (S.Samples.size() > MaxSamples)
      S.Samples.resize(MaxSamples);
    return;
  }
  S.Min = std::min(S.Min, Other.Min);
  S.Max = std::max(S.Max, Other.Max);
  uint64_t SelfCount = S.Count;
  S.Count += Other.Count;
  S.Sum += Other.Sum;
  if (S.Samples.size() + Other.Samples.size() <= MaxSamples) {
    // Everything fits: keep plain append-in-call-order determinism.
    S.Samples.insert(S.Samples.end(), Other.Samples.begin(),
                     Other.Samples.end());
    return;
  }
  // Over the cap: each side contributes samples proportionally to its
  // observation count (not its sample count), so a long-running job is
  // not drowned out by whichever snapshot merged first.
  size_t KeepSelf = static_cast<size_t>(
      static_cast<double>(MaxSamples) * static_cast<double>(SelfCount) /
      static_cast<double>(S.Count));
  if (KeepSelf > S.Samples.size())
    KeepSelf = S.Samples.size();
  size_t KeepOther = MaxSamples - KeepSelf;
  if (KeepOther > Other.Samples.size()) {
    KeepOther = Other.Samples.size();
    KeepSelf = std::min(S.Samples.size(), MaxSamples - KeepOther);
  }
  std::vector<double> Merged;
  Merged.reserve(KeepSelf + KeepOther);
  appendSpaced(Merged, S.Samples, KeepSelf);
  appendSpaced(Merged, Other.Samples, KeepOther);
  S.Samples = std::move(Merged);
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> Lock(M);
  S = Snapshot();
  Rng = 0x9e3779b97f4a7c15ull;
}

MetricsRegistry &MetricsRegistry::global() {
  // Leaked on purpose: hook sites cache references and atexit-registered
  // trace flushes may dump metrics after static destruction began.
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

namespace {
/// The innermost ScopedMetrics registry of this thread (null = global()).
thread_local MetricsRegistry *CurrentRegistry = nullptr;
} // namespace

MetricsRegistry &MetricsRegistry::current() {
  return CurrentRegistry ? *CurrentRegistry : global();
}

MetricsRegistry *MetricsRegistry::exchangeCurrent(MetricsRegistry *R) {
  MetricsRegistry *Prev = CurrentRegistry;
  CurrentRegistry = R;
  return Prev;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

uint64_t MetricsRegistry::counterValue(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->value();
}

int64_t MetricsRegistry::gaugeValue(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0 : It->second->value();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.size() + Gauges.size() + Histograms.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &Other) {
  if (&Other == this)
    return;
  // counter()/gauge()/histogram() lock this->M per lookup, so only hold
  // Other's mutex here (consistent order: the source registry is a
  // completed job no hook site touches anymore).
  std::lock_guard<std::mutex> Lock(Other.M);
  for (const auto &[Name, C] : Other.Counters)
    if (uint64_t V = C->value())
      counter(Name).inc(V);
  for (const auto &[Name, G] : Other.Gauges)
    if (int64_t V = G->value())
      gauge(Name).set(V);
  for (const auto &[Name, H] : Other.Histograms)
    histogram(Name).merge(H->snapshot());
}

namespace {

void appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendJsonDouble(std::string &Out, double X) {
  if (!std::isfinite(X)) {
    Out += "0";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", X);
  Out += Buf;
}

} // namespace

std::string MetricsRegistry::dumpJson() const {
  std::lock_guard<std::mutex> Lock(M);
  // Merge all kinds into one sorted key space (names are disjoint by
  // convention: counters/gauges/histograms never share a name).
  std::map<std::string_view, std::string> Entries;
  for (const auto &[Name, C] : Counters)
    Entries[Name] = std::to_string(C->value());
  for (const auto &[Name, G] : Gauges)
    Entries[Name] = std::to_string(G->value());
  for (const auto &[Name, H] : Histograms) {
    Histogram::Snapshot S = H->snapshot();
    std::string V = "{\"count\":" + std::to_string(S.Count) + ",\"sum\":";
    appendJsonDouble(V, S.Sum);
    V += ",\"min\":";
    appendJsonDouble(V, S.Min);
    V += ",\"max\":";
    appendJsonDouble(V, S.Max);
    V += ",\"mean\":";
    appendJsonDouble(V, S.mean());
    V += ",\"p50\":";
    appendJsonDouble(V, S.percentile(50));
    V += ",\"p95\":";
    appendJsonDouble(V, S.percentile(95));
    V += ",\"p99\":";
    appendJsonDouble(V, S.percentile(99));
    V += "}";
    Entries[Name] = std::move(V);
  }

  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, Value] : Entries) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  ";
    appendJsonString(Out, Name);
    Out += ": ";
    Out += Value;
  }
  Out += "\n}\n";
  return Out;
}

bool MetricsRegistry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << dumpJson();
  return static_cast<bool>(Out);
}
