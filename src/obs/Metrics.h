//===- Metrics.h - Named counters, gauges, and histograms --------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metrics registry: named counters, gauges, and
/// histograms the pipeline increments at its hook points (S-DPST nodes
/// built, ESP-bags shadow checks, DP subproblems solved, runtime steals,
/// ...) and dumps as one JSON object (`tdr ... --metrics-json m.json`).
///
/// Instruments are registered on first use and never destroyed, so hook
/// sites bind them once through a function-local static and then touch a
/// single relaxed atomic per event:
///
/// \code
///   static obs::Counter &Checks = obs::counter("espbags.checks");
///   Checks.inc();
/// \endcode
///
/// Counters and gauges are safe to update from any thread (the runtime's
/// workers update theirs concurrently). Histograms take a mutex and are
/// meant for per-phase observations, not per-event hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_OBS_METRICS_H
#define TDR_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace tdr {
namespace obs {

/// Monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value (e.g. S-DPST nodes of the most recent detection run).
class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Count/sum/min/max summary of a stream of observations (per-phase wall
/// times and the like).
class Histogram {
public:
  struct Snapshot {
    uint64_t Count = 0;
    double Sum = 0;
    double Min = 0;
    double Max = 0;
    double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  };

  void observe(double X);
  Snapshot snapshot() const;
  void reset();

private:
  mutable std::mutex M;
  Snapshot S;
};

/// Owns every named instrument of the process. Use the global() instance
/// (or the counter()/gauge()/histogram() shorthands below); separate
/// instances exist only so tests can exercise the registry in isolation.
class MetricsRegistry {
public:
  /// The process-wide registry. Never destroyed.
  static MetricsRegistry &global();

  /// Finds or registers an instrument. References stay valid for the
  /// lifetime of the registry.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Current value of a counter, or 0 when it was never registered.
  uint64_t counterValue(std::string_view Name) const;
  /// Current value of a gauge, or 0 when it was never registered.
  int64_t gaugeValue(std::string_view Name) const;

  /// Number of registered instruments (all kinds).
  size_t size() const;

  /// Zeroes every instrument, keeping registrations.
  void reset();

  /// One JSON object, keys sorted: counters and gauges map to integers,
  /// histograms to {"count","sum","min","max","mean"} objects.
  std::string dumpJson() const;
  /// Writes dumpJson() to \p Path. Returns false on I/O failure.
  bool writeJson(const std::string &Path) const;

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

/// Shorthands against the global registry, for hook sites.
inline Counter &counter(std::string_view Name) {
  return MetricsRegistry::global().counter(Name);
}
inline Gauge &gauge(std::string_view Name) {
  return MetricsRegistry::global().gauge(Name);
}
inline Histogram &histogram(std::string_view Name) {
  return MetricsRegistry::global().histogram(Name);
}

} // namespace obs
} // namespace tdr

#endif // TDR_OBS_METRICS_H
