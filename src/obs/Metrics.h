//===- Metrics.h - Named counters, gauges, and histograms --------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry: named counters, gauges, and histograms the
/// pipeline increments at its hook points (S-DPST nodes built, ESP-bags
/// shadow checks, DP subproblems solved, runtime steals, ...) and dumps as
/// one JSON object (`tdr ... --metrics-json m.json`).
///
/// Scoping contract: hook sites resolve instruments against the *current*
/// registry — a thread-local override installed by ScopedMetrics, falling
/// back to the process-wide global() instance. This is what makes the
/// pipeline re-entrant: a batch worker installs its own registry, runs a
/// full parse/detect/repair, and every metric of that run lands in the
/// job's registry instead of racing with the other workers' runs on
/// process-global counters. When no ScopedMetrics is active, everything
/// lands in global(), preserving the one-process-one-run behavior.
///
/// Because the current registry can change between runs, hook sites must
/// NOT cache instrument references in function-local statics. Cheap sites
/// look the instrument up per call:
///
/// \code
///   obs::counter("detect.runs").inc();
/// \endcode
///
/// Per-event hot paths (shadow checks, node creation) bind instruments
/// once per *object* at construction time and then touch a single relaxed
/// atomic per event — the object lives within one run, so the binding
/// inherits the right registry:
///
/// \code
///   Detector::Detector() : CChecks(&obs::counter("espbags.checks")) {}
///   ... CChecks->inc(); ...
/// \endcode
///
/// Counters and gauges are safe to update from any thread (the runtime's
/// workers update theirs concurrently). Histograms take a mutex and are
/// meant for per-phase observations, not per-event hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_OBS_METRICS_H
#define TDR_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tdr {
namespace obs {

/// Monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written value (e.g. S-DPST nodes of the most recent detection run).
class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Count/sum/min/max summary of a stream of observations (per-phase wall
/// times and the like), plus a bounded sample reservoir for percentiles.
class Histogram {
public:
  /// Samples kept per histogram for percentile estimation. Past the cap,
  /// reservoir sampling (Vitter's Algorithm R) keeps every observation
  /// equally likely to be retained, driven by a deterministic LCG seeded
  /// from a fixed constant — no rand()/time seeding — so a given
  /// observation sequence always yields the same percentiles.
  static constexpr size_t MaxSamples = 1024;

  struct Snapshot {
    uint64_t Count = 0;
    double Sum = 0;
    double Min = 0;
    double Max = 0;
    std::vector<double> Samples;
    double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
    /// Nearest-rank percentile over the retained samples (P in [0, 100]).
    /// Returns 0 when no samples were retained.
    double percentile(double P) const;
  };

  void observe(double X);
  /// Folds another histogram's summary into this one. While the combined
  /// sample sets fit the cap they append in call order; past the cap each
  /// side keeps an evenly-spaced subset sized proportionally to its
  /// observation count, so merging job registries in submission order
  /// keeps percentiles deterministic and representative of both sides.
  void merge(const Snapshot &Other);
  Snapshot snapshot() const;
  void reset();

private:
  mutable std::mutex M;
  Snapshot S;
  uint64_t Rng = 0x9e3779b97f4a7c15ull; ///< reservoir LCG state
};

/// Owns a set of named instruments. The process-wide global() instance is
/// the default sink; per-run instances are installed with ScopedMetrics
/// (batch repair gives every job its own) and folded back into a parent
/// with mergeFrom().
class MetricsRegistry {
public:
  /// The process-wide registry. Never destroyed.
  static MetricsRegistry &global();

  /// The registry hook sites resolve against: the innermost ScopedMetrics
  /// registry of the calling thread, or global() when none is active.
  static MetricsRegistry &current();

  /// Finds or registers an instrument. References stay valid for the
  /// lifetime of the registry.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Current value of a counter, or 0 when it was never registered.
  uint64_t counterValue(std::string_view Name) const;
  /// Current value of a gauge, or 0 when it was never registered.
  int64_t gaugeValue(std::string_view Name) const;

  /// Number of registered instruments (all kinds).
  size_t size() const;

  /// Zeroes every instrument, keeping registrations.
  void reset();

  /// Folds \p Other into this registry: counter values add, gauges take
  /// Other's value when it is nonzero (so merging in submission order
  /// keeps "last run" semantics deterministic), histograms merge their
  /// summaries. Instruments missing here are registered.
  void mergeFrom(const MetricsRegistry &Other);

  /// One JSON object, keys sorted: counters and gauges map to integers,
  /// histograms to {"count","sum","min","max","mean","p50","p95","p99"}
  /// objects.
  std::string dumpJson() const;
  /// Writes dumpJson() to \p Path. Returns false on I/O failure.
  bool writeJson(const std::string &Path) const;

private:
  friend class ScopedMetrics;

  /// The thread's override stack top (null = use global()). Returned so
  /// ScopedMetrics can restore the previous registry on destruction.
  static MetricsRegistry *exchangeCurrent(MetricsRegistry *R);

  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

/// RAII: makes \p R the calling thread's current registry for the guard's
/// lifetime (nests; the previous registry is restored on destruction).
/// Other threads are unaffected — a registry is only "current" on threads
/// that installed it, so every batch worker scopes its own job.
class ScopedMetrics {
public:
  explicit ScopedMetrics(MetricsRegistry &R)
      : Prev(MetricsRegistry::exchangeCurrent(&R)) {}
  ~ScopedMetrics() { MetricsRegistry::exchangeCurrent(Prev); }

  ScopedMetrics(const ScopedMetrics &) = delete;
  ScopedMetrics &operator=(const ScopedMetrics &) = delete;

private:
  MetricsRegistry *Prev;
};

/// Shorthands against the current registry, for hook sites.
inline Counter &counter(std::string_view Name) {
  return MetricsRegistry::current().counter(Name);
}
inline Gauge &gauge(std::string_view Name) {
  return MetricsRegistry::current().gauge(Name);
}
inline Histogram &histogram(std::string_view Name) {
  return MetricsRegistry::current().histogram(Name);
}

} // namespace obs
} // namespace tdr

#endif // TDR_OBS_METRICS_H
