//===- Phases.h - Generated phase constants ---------------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase-name constants generated from Phases.def, the single source of
/// truth shared with tools/check_trace.py. Hook points open spans with
/// `obs::ScopedSpan Span(obs::phase::Sema);` instead of repeating the
/// name/category strings — a typo becomes a compile error, and a new
/// phase is one TDR_PHASE line that both the tracer and the trace schema
/// checker pick up.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_OBS_PHASES_H
#define TDR_OBS_PHASES_H

namespace tdr {
namespace obs {

/// One registered pipeline phase (see Phases.def for the registry).
struct PhaseInfo {
  const char *Name;    ///< span name as emitted in trace JSON
  const char *Cat;     ///< Chrome trace_event category
  bool Required;       ///< every `tdr races` trace must contain it
};

namespace phase {
#define TDR_PHASE(Ident, Name, Cat, Required)                                  \
  inline constexpr PhaseInfo Ident{Name, Cat, Required != 0};
#include "obs/Phases.def"
#undef TDR_PHASE
} // namespace phase

/// All registered phases, in Phases.def order.
inline constexpr PhaseInfo AllPhases[] = {
#define TDR_PHASE(Ident, Name, Cat, Required) phase::Ident,
#include "obs/Phases.def"
#undef TDR_PHASE
};

} // namespace obs
} // namespace tdr

#endif // TDR_OBS_PHASES_H
