//===- classroom_grader.cpp - Automated homework grading (§7.4) -----------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The paper's classroom use case: grade a student's finish placement for
// the parallel-quicksort assignment against the tool's own repair. A
// submission is "racy" if the detector finds races on the test input,
// "over-synchronized" if race free but with a longer critical path than
// the tool's repair, and "matches the tool" otherwise.
//
// Run with no arguments to grade three sample submissions, or pass a path
// to an HJ-mini file to grade it (the program must read its input size
// from arg(0)).
//
// Run: build/examples/classroom_grader [submission.hj]
//
//===----------------------------------------------------------------------===//

#include "ast/Transforms.h"
#include "frontend/Parser.h"
#include "race/Detect.h"
#include "repair/MultiInput.h"
#include "repair/RepairDriver.h"
#include "sema/Sema.h"
#include "suite/StudentCohort.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace tdr;

namespace {

constexpr int64_t InputSize = 200;

/// The assignment skeleton with no synchronization; the tool's repair of
/// it is the grading baseline.
const char *Skeleton = R"(
var A: int[];

func partition(lo: int, hi: int, out: int[]) {
  var pivot: int = A[(lo + hi) / 2];
  var i: int = lo;
  var j: int = hi;
  while (i <= j) {
    while (A[i] < pivot) { i = i + 1; }
    while (A[j] > pivot) { j = j - 1; }
    if (i <= j) {
      var t: int = A[i]; A[i] = A[j]; A[j] = t;
      i = i + 1; j = j - 1;
    }
  }
  out[0] = i;
  out[1] = j;
}

func quicksort(m: int, n: int) {
  if (m < n) {
    var p: int[] = new int[2];
    partition(m, n, p);
    async quicksort(m, p[1]);
    async quicksort(p[0], n);
  }
}

func main() {
  var n: int = arg(0);
  A = new int[n];
  randSeed(42);
  for (var i: int = 0; i < n; i = i + 1) { A[i] = randInt(100000); }
  quicksort(0, n - 1);
  var ok: bool = true;
  for (var i: int = 1; i < n; i = i + 1) {
    if (A[i - 1] > A[i]) { ok = false; }
  }
  print(ok);
}
)";

uint64_t toolBaselineCpl() {
  SourceManager SM("skeleton.hj", Skeleton);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser P(SM.buffer(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  runSema(*Prog, Ctx, Diags);
  RepairOptions Opts;
  Opts.Exec.Args = {InputSize};
  RepairResult R = repairProgram(*Prog, Ctx, Opts);
  if (!R.Success)
    return 0;
  Detection D = detectRaces(*Prog, EspBagsDetector::Mode::SRW, Opts.Exec);
  return D.Tree->subtreeCpl(D.Tree->root());
}

void grade(const std::string &Name, const std::string &Src,
           uint64_t ToolCpl) {
  SourceManager SM(Name, Src);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser P(SM.buffer(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  if (!Diags.hasErrors())
    runSema(*Prog, Ctx, Diags);
  if (Diags.hasErrors()) {
    std::printf("%-28s does not compile:\n%s", Name.c_str(),
                Diags.render(SM).c_str());
    return;
  }
  ExecOptions Exec;
  Exec.Args = {InputSize};
  Detection D = detectRaces(*Prog, EspBagsDetector::Mode::MRW, Exec);
  if (!D.ok()) {
    std::printf("%-28s crashed on the test input: %s\n", Name.c_str(),
                D.Exec.Error.c_str());
    return;
  }
  if (!D.Report.Pairs.empty()) {
    std::printf("%-28s RACY: %zu racing step pairs (e.g. on %s)\n",
                Name.c_str(), D.Report.Pairs.size(),
                D.Report.Pairs.front().Loc.str().c_str());
    return;
  }
  uint64_t Cpl = D.Tree->subtreeCpl(D.Tree->root());
  if (Cpl > ToolCpl + ToolCpl / 200) {
    std::printf("%-28s OVER-SYNCHRONIZED: CPL %llu vs tool %llu "
                "(%.2fx less parallel)\n",
                Name.c_str(), static_cast<unsigned long long>(Cpl),
                static_cast<unsigned long long>(ToolCpl),
                static_cast<double>(Cpl) / static_cast<double>(ToolCpl));
    return;
  }
  std::printf("%-28s FULL MARKS: race free and as parallel as the tool's "
              "repair (CPL %llu)\n",
              Name.c_str(), static_cast<unsigned long long>(Cpl));
}

std::string withMainFinish(const std::string &S) {
  std::string Out = S;
  auto Pos = Out.find("  quicksort(0, n - 1);");
  Out.replace(Pos, 22, "  finish quicksort(0, n - 1);");
  return Out;
}

/// Before trusting grades, check the test-input set itself (paper §9):
/// every async site must spawn at least once, and every input must
/// actually execute — a crashing input observes nothing, which is not the
/// same as observing no races.
void checkTestSuitability() {
  SourceManager SM("skeleton.hj", Skeleton);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser P(SM.buffer(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  runSema(*Prog, Ctx, Diags);

  // The grading input plus a deliberately broken one (negative array
  // size), to show crashing inputs are reported rather than silently
  // counted as zero coverage.
  std::vector<ExecOptions> Inputs(2);
  Inputs[0].Args = {InputSize};
  Inputs[1].Args = {-5};
  CoverageReport C = analyzeTestCoverage(*Prog, Inputs);
  std::printf("test-set check: %zu/%zu async sites exercised, %zu input(s) "
              "failed to execute\n",
              C.NumExercised, C.Sites.size(), C.FailedInputs.size());
  for (const CoverageReport::FailedInput &F : C.FailedInputs)
    std::printf("  input %zu (arg %lld) failed: %s\n", F.Index,
                static_cast<long long>(Inputs[F.Index].Args[0]),
                F.Error.c_str());
  std::printf("  -> grading below uses only the good input (n=%lld)\n\n",
              static_cast<long long>(InputSize));
}

std::string withSerializingFinishes(const std::string &S) {
  std::string Out = S;
  auto Pos = Out.find("    async quicksort(m, p[1]);\n"
                      "    async quicksort(p[0], n);");
  Out.replace(Pos, 58, "    finish async quicksort(m, p[1]);\n"
                       "    finish async quicksort(p[0], n);");
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("computing the tool's baseline repair...\n");
  uint64_t ToolCpl = toolBaselineCpl();
  if (!ToolCpl) {
    std::printf("baseline repair failed\n");
    return 1;
  }
  std::printf("tool repair CPL on n=%lld: %llu work units\n\n",
              static_cast<long long>(InputSize),
              static_cast<unsigned long long>(ToolCpl));

  checkTestSuitability();

  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    grade(argv[1], SS.str(), ToolCpl);
    return 0;
  }

  grade("no-synchronization", Skeleton, ToolCpl);
  grade("serializing-finishes", withSerializingFinishes(Skeleton), ToolCpl);
  grade("finish-around-call", withMainFinish(Skeleton), ToolCpl);

  std::printf("\n(The full 59-student cohort of paper §7.4 is regenerated "
              "by bench/bench_students.)\n");
  return 0;
}
