//===- repair_mergesort.cpp - The full §7.1 workflow on one benchmark -----===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Walks the paper's evaluation protocol end to end on Mergesort
// (Figure 1): take the expert-written parallel program, strip every finish
// (producing the "buggy" program), detect the races, repair, and verify
// that the repair is race free, semantics preserving, and as parallel as
// the expert original.
//
// Run: build/examples/repair_mergesort [n]     (default n = 300)
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "ast/Transforms.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"
#include "sched/Schedule.h"
#include "sema/Sema.h"
#include "suite/Benchmarks.h"
#include "suite/Experiment.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace tdr;

int main(int argc, char **argv) {
  int64_t N = argc > 1 ? std::atoll(argv[1]) : 300;
  const BenchmarkSpec *Spec = findBenchmark("Mergesort");

  ExecOptions Exec;
  Exec.Args = {N};

  // 1. The expert original: race free, parallel.
  LoadedBenchmark Orig = loadBenchmark(Spec->Source);
  Detection OrigDet = detectRaces(*Orig.Prog, EspBagsDetector::Mode::MRW,
                                  Exec);
  ParallelismStats OrigStats = analyzeDpst(*OrigDet.Tree, 12);
  std::printf("original:  races=%zu  T1=%llu  Tinf=%llu  parallelism=%.1f\n",
              OrigDet.Report.Pairs.size(),
              static_cast<unsigned long long>(OrigStats.T1),
              static_cast<unsigned long long>(OrigStats.Tinf),
              OrigStats.parallelism());

  // 2. Strip the finishes: the paper's buggy input (§7.1).
  LoadedBenchmark Buggy = loadBenchmark(Spec->Source);
  unsigned Stripped = stripFinishes(*Buggy.Prog);
  DiagnosticsEngine Diags;
  runSema(*Buggy.Prog, *Buggy.Ctx, Diags);
  std::printf("stripped %u finish statement(s)\n", Stripped);

  Detection BuggyDet = detectRaces(*Buggy.Prog, EspBagsDetector::Mode::MRW,
                                   Exec);
  std::printf("buggy:     races=%zu distinct pairs (%llu reports), "
              "S-DPST nodes=%zu\n",
              BuggyDet.Report.Pairs.size(),
              static_cast<unsigned long long>(BuggyDet.Report.RawCount),
              BuggyDet.Tree->numNodes());
  if (!BuggyDet.Report.Pairs.empty()) {
    const RacePair &First = BuggyDet.Report.Pairs.front();
    std::printf("  e.g. %s between steps %u -> %u on %s\n",
                First.SrcKind == AccessKind::Write &&
                        First.SnkKind == AccessKind::Write
                    ? "write-write race"
                    : "read-write race",
                First.Src->id(), First.Snk->id(), First.Loc.str().c_str());
  }

  // 3. Repair.
  RepairOptions Opts;
  Opts.Exec = Exec;
  RepairResult R = repairProgram(*Buggy.Prog, *Buggy.Ctx, Opts);
  if (!R.Success) {
    std::printf("repair failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("repair:    inserted %u finish(es), detection runs=%u, "
              "repair time=%.1fms\n",
              R.Stats.FinishesInserted, R.Stats.Iterations,
              R.Stats.totalRepairMs());

  // 4. Verify: race free, same output as the serial elision, parallel.
  Detection After = detectRaces(*Buggy.Prog, EspBagsDetector::Mode::MRW,
                                Exec);
  ParallelismStats RepStats = analyzeDpst(*After.Tree, 12);
  std::printf("repaired:  races=%zu  T1=%llu  Tinf=%llu  parallelism=%.1f\n",
              After.Report.Pairs.size(),
              static_cast<unsigned long long>(RepStats.T1),
              static_cast<unsigned long long>(RepStats.Tinf),
              RepStats.parallelism());
  std::printf("outputs match the original: %s\n",
              After.Exec.Output == OrigDet.Exec.Output ? "yes" : "NO");

  std::printf("\n=== Repaired mergesort ===\n%s",
              printProgram(*Buggy.Prog).c_str());
  return 0;
}
