//===- explore_placements.cpp - S-DPST and placement exploration ----------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// A tour of the analysis internals on a small program: builds the S-DPST,
// dumps it as Graphviz, lists the detected races with their NS-LCAs,
// shows the dependence graph the placement DP runs on (paper §5.1,
// Figures 10/11), and prints the costs of alternative placements next to
// the DP's optimum (paper Figures 3/4).
//
// Run: build/examples/explore_placements [--dot]
//
//===----------------------------------------------------------------------===//

#include "race/Detect.h"
#include "repair/DepGraph.h"
#include "repair/FinishPlacement.h"
#include "frontend/Parser.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <cstring>

using namespace tdr;

int main(int argc, char **argv) {
  bool Dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  // A miniature of the paper's Figure 3 situation: six tasks with
  // dependences B -> D, A -> F, D -> F carried through shared cells.
  const char *Src = R"(
var C: int[];
func spin(units: int, out: int, val: int) {
  var s: int = 0;
  for (var i: int = 0; i < units; i = i + 1) { s = s + i; }
  C[out] = val + s * 0;
}
func main() {
  C = new int[8];
  async spin(50, 0, 1);              // A (writes C[0])
  async spin(1, 1, 2);               // B (writes C[1])
  async spin(1, 2, 3);               // C
  async { C[3] = C[1] + 1; }         // D (reads C[1]: B -> D)
  async spin(60, 4, 5);              // E
  async { C[5] = C[0] + C[3]; }      // F (reads C[0], C[3]: A,D -> F)
  print(0);
}
)";

  SourceManager SM("example.hj", Src);
  DiagnosticsEngine Diags;
  AstContext Ctx;
  Parser P(SM.buffer(), Ctx, Diags);
  Program *Prog = P.parseProgram();
  runSema(*Prog, Ctx, Diags);
  if (Diags.hasErrors()) {
    std::printf("%s", Diags.render(SM).c_str());
    return 1;
  }

  Detection D = detectRaces(*Prog);
  if (Dot) {
    std::printf("%s", D.Tree->dumpDot().c_str());
    return 0;
  }

  std::printf("S-DPST: %zu nodes\n", D.Tree->numNodes());
  std::printf("races: %zu distinct pairs\n\n", D.Report.Pairs.size());
  for (const RacePair &R : D.Report.Pairs) {
    const DpstNode *L = D.Tree->nsLca(R.Src, R.Snk);
    std::printf("  %-6s %s -> %s  on %-12s  NS-LCA=%s\n",
                R.SrcKind == AccessKind::Write ? "write" : "read",
                R.Src->label().c_str(), R.Snk->label().c_str(),
                R.Loc.str().c_str(), L->label().c_str());
  }

  std::vector<DepGroup> Groups = buildDepGroups(*D.Tree, D.Report.Pairs);
  std::printf("\n%zu dependence group(s); first group (paper Figure 11 "
              "analogue):\n",
              Groups.size());
  const DepGroup &G = Groups.front();
  for (size_t I = 0; I != G.Nodes.size(); ++I)
    std::printf("  v%-3zu %-12s t=%llu%s\n", I, G.Nodes[I]->label().c_str(),
                static_cast<unsigned long long>(G.Problem.Times[I]),
                G.Problem.IsAsync[I] ? "  (async)" : "");
  for (auto [X, Y] : G.Problem.Edges)
    std::printf("  edge v%u -> v%u\n", X, Y);

  PlacementResult Dp = placeFinishes(
      G.Problem, [](uint32_t, uint32_t) { return true; });
  std::printf("\nDP solution (Algorithm 1): cost=%llu, finishes:",
              static_cast<unsigned long long>(Dp.Cost));
  for (auto [S, E] : Dp.Finishes)
    std::printf(" [v%u..v%u]", S, E);

  // Compare with two naive strategies.
  std::vector<std::pair<uint32_t, uint32_t>> WrapEach;
  for (auto [X, Y] : G.Problem.Edges) {
    (void)Y;
    WrapEach.push_back({X, X});
  }
  std::vector<std::pair<uint32_t, uint32_t>> OneBig;
  uint32_t MaxSrc = 0;
  for (auto [X, Y] : G.Problem.Edges) {
    (void)Y;
    MaxSrc = std::max(MaxSrc, X);
  }
  OneBig.push_back({0, MaxSrc});
  std::printf("\nnaive 'finish each source':   cost=%llu\n",
              static_cast<unsigned long long>(
                  evalPlacementCost(G.Problem, WrapEach)));
  std::printf("naive 'one finish over all':  cost=%llu\n",
              static_cast<unsigned long long>(
                  evalPlacementCost(G.Problem, OneBig)));
  std::printf("\n(rerun with --dot for the Graphviz S-DPST)\n");
  return 0;
}
