//===- quickstart.cpp - Five-minute tour of the repair tool ---------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// The paper's Figure 8 Fibonacci program, with its synchronization
// missing, repaired in one call: parse -> detect races on a test input ->
// place finishes -> print the repaired source (the paper's Figure 15).
//
// Run: build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "repair/RepairDriver.h"

#include <cstdio>

using namespace tdr;

int main() {
  // Figure 8, HJ-mini syntax (BoxInteger becomes a one-element array).
  // The programmer has marked the recursive calls async (step 2 of the
  // paper's workflow) but wrote no synchronization.
  const char *Buggy = R"(
func fib(ret: int[], n: int) {
  if (n < 2) {
    ret[0] = n;
    return;
  }
  var x: int[] = new int[1];
  var y: int[] = new int[1];
  async fib(x, n - 1);
  async fib(y, n - 2);
  ret[0] = x[0] + y[0];
}

func main() {
  var result: int[] = new int[1];
  async fib(result, arg(0));
  print(result[0]);
}
)";

  std::printf("=== Buggy input program ===\n%s\n", Buggy);

  RepairOptions Opts;
  Opts.Exec.Args = {10}; // the test input: fib(10)

  std::string Repaired;
  RepairResult R = repairSource(Buggy, Repaired, Opts);
  if (!R.Success) {
    std::printf("repair failed: %s\n", R.Error.c_str());
    return 1;
  }

  std::printf("=== Repair summary ===\n");
  std::printf("S-DPST nodes:        %zu\n", R.Stats.DpstNodes);
  std::printf("races found:         %llu reports, %zu distinct pairs\n",
              static_cast<unsigned long long>(R.Stats.RawRaces),
              R.Stats.RacePairs);
  std::printf("finishes inserted:   %u\n", R.Stats.FinishesInserted);
  std::printf("detection runs:      %u (last one confirms race freedom)\n",
              R.Stats.Iterations);

  std::printf("\n=== Repaired program (compare with the paper's Figure 15) "
              "===\n%s",
              Repaired.c_str());
  return 0;
}
