//===- bench_ablation_placement.cpp - Placement strategy ablation ---------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Two ablations of the dynamic-programming finish placement (DESIGN.md):
//
//  1. The paper's Figure 3/4 example: the CPL of every placement the
//     figure lists, next to the DP's solution (which improves on all of
//     them: 1100 vs the figure's best 1110).
//
//  2. Placement strategy comparison across the benchmark suite: critical
//     path length of the repair produced by (a) the DP, (b) the naive
//     sound strategy "wrap every racing async individually", and (c) the
//     expert-written original — showing why optimal placement matters.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ast/Transforms.h"
#include "race/Detect.h"
#include "repair/DepGraph.h"
#include "repair/FinishPlacement.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "suite/Experiment.h"
#include "support/StringUtils.h"

#include <set>

using namespace tdr;
using namespace tdr::bench;

namespace {

void figure34() {
  banner("Ablation 1: Figure 3/4 example (asyncs A..F)");
  PlacementProblem P;
  P.Times = {500, 10, 10, 400, 600, 500};
  P.IsAsync = {true, true, true, true, true, true};
  P.Edges = {{1, 3}, {0, 5}, {3, 5}};

  struct Row {
    const char *Desc;
    std::vector<std::pair<uint32_t, uint32_t>> Finishes;
  };
  const Row Rows[] = {
      {"( A ) ( B ) C ( D ) E F", {{0, 0}, {1, 1}, {3, 3}}},
      {"( A B ) C ( D ) E F", {{0, 1}, {3, 3}}},
      {"( A B C ) ( D ) E F", {{0, 2}, {3, 3}}},
      {"( A ( B ) C D E ) F", {{0, 4}, {1, 1}}},
  };
  std::printf("%-30s %8s  (paper Figure 4)\n", "Placement", "CPL");
  rule(50);
  for (const Row &R : Rows)
    std::printf("%-30s %8llu\n", R.Desc,
                static_cast<unsigned long long>(
                    evalPlacementCost(P, R.Finishes)));

  PlacementResult Dp =
      placeFinishes(P, [](uint32_t, uint32_t) { return true; });
  std::string Desc = "DP (Algorithm 1):";
  for (auto [S, E] : Dp.Finishes)
    Desc += strFormat(" [%c..%c]", 'A' + S, 'A' + E);
  std::printf("%-30s %8llu  <- optimal\n", Desc.c_str(),
              static_cast<unsigned long long>(Dp.Cost));
}

/// CPL of the program after wrapping every racing async individually
/// (the naive sound repair).
uint64_t naiveRepairCpl(const BenchmarkSpec &B) {
  LoadedBenchmark L = loadBenchmark(B.Source);
  stripFinishes(*L.Prog);
  DiagnosticsEngine Diags;
  runSema(*L.Prog, *L.Ctx, Diags);
  ExecOptions Exec;
  Exec.Args = B.RepairArgs;

  // Iterate: wrap the async statement of every race source until no races
  // remain (each wrap statically serializes that async everywhere).
  for (int Iter = 0; Iter != 12; ++Iter) {
    Detection D = detectRaces(*L.Prog, EspBagsDetector::Mode::MRW, Exec);
    if (!D.ok())
      return 0;
    if (D.Report.Pairs.empty())
      return D.Tree->subtreeCpl(D.Tree->root());
    // Wrap the statements of all racing asyncs.
    std::set<const AsyncStmt *> ToWrap;
    for (const RacePair &R : D.Report.Pairs) {
      const DpstNode *L2 = D.Tree->nsLca(R.Src, R.Snk);
      const DpstNode *Child = D.Tree->nonScopeChildToward(L2, R.Src);
      if (Child && Child->isAsync() && Child->asyncStmt())
        ToWrap.insert(Child->asyncStmt());
    }
    if (ToWrap.empty())
      return 0;
    // Replace each async statement A with finish(A) via its parent slot.
    for (FuncDecl *F : L.Prog->funcs()) {
      struct Wrapper {
        const std::set<const AsyncStmt *> &ToWrap;
        AstContext &Ctx;
        void visitBlock(BlockStmt *Blk) {
          for (Stmt *&S : Blk->stmts())
            S = visit(S);
        }
        Stmt *visit(Stmt *S) {
          switch (S->kind()) {
          case Stmt::Kind::Block:
            visitBlock(cast<BlockStmt>(S));
            return S;
          case Stmt::Kind::If: {
            auto *I = cast<IfStmt>(S);
            I->setThenStmt(visit(I->thenStmt()));
            if (I->elseStmt())
              I->setElseStmt(visit(I->elseStmt()));
            return S;
          }
          case Stmt::Kind::While: {
            auto *W = cast<WhileStmt>(S);
            W->setBody(visit(W->body()));
            return S;
          }
          case Stmt::Kind::For: {
            auto *F2 = cast<ForStmt>(S);
            F2->setBody(visit(F2->body()));
            return S;
          }
          case Stmt::Kind::Async: {
            auto *A = cast<AsyncStmt>(S);
            A->setBody(visit(A->body()));
            if (ToWrap.count(A)) {
              auto *Fin = Ctx.createStmt<FinishStmt>(A, A->loc());
              Fin->setSynthesized(true);
              return Fin;
            }
            return S;
          }
          case Stmt::Kind::Finish: {
            auto *Fin = cast<FinishStmt>(S);
            Fin->setBody(visit(Fin->body()));
            return S;
          }
          default:
            return S;
          }
        }
      } W{ToWrap, *L.Ctx};
      W.visitBlock(F->body());
    }
  }
  return 0;
}

void strategyComparison() {
  banner("Ablation 2: repair strategy vs critical path length "
         "(repair input)");
  std::printf("%-14s %14s %14s %14s %12s\n", "Benchmark", "Original CPL",
              "DP repair CPL", "Naive CPL", "Naive/DP");
  rule(75);
  for (const BenchmarkSpec &B : allBenchmarks()) {
    RepairExperiment R =
        runRepairExperiment(B, EspBagsDetector::Mode::MRW);
    uint64_t Naive = naiveRepairCpl(B);
    double Ratio = R.Repaired.Tinf
                       ? static_cast<double>(Naive) /
                             static_cast<double>(R.Repaired.Tinf)
                       : 0.0;
    std::printf("%-14s %14llu %14llu %14llu %11.2fx\n", B.Name,
                static_cast<unsigned long long>(R.Original.Tinf),
                static_cast<unsigned long long>(R.Repaired.Tinf),
                static_cast<unsigned long long>(Naive), Ratio);
  }
  std::printf("\nNaive = wrap every racing async in its own finish "
              "(sound, but serializes).\n");
}

} // namespace

int main() {
  figure34();
  strategyComparison();
  return 0;
}
