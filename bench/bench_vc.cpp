//===- bench_vc.cpp - Vector-clock vs ESP-bags backend comparison ---------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Head-to-head throughput comparison of the two detection backends over
// identical synthetic monitor streams (no parser/interpreter in the loop):
//
//   espbags  the ESP-bags fast path (union-find bags, flat shadow, fused
//            monitor dispatch) — the default backend
//   vc       the async-finish vector-clock backend (bit-degenerate clocks,
//            COW materialization, per-finish join accumulators) behind the
//            same fused dispatch
//
// Two workload families, both race-free so the numbers are pure
// detection-side overhead:
//
//   access  few tasks, many shared-memory accesses — the per-access check
//           dominates (ESP-bags: union-find lookup; vc: active-flag or
//           clock bit test). The backends should be at parity here; CI
//           gates vc at >= 0.9x espbags on this family
//           (tools/check_bench.py --min-speedup access:0.9).
//   finish  many short-lived tasks joined by sequential finish blocks,
//           then serial scans over everything they wrote — stresses the
//           structure-side costs (vc: clock materializations and join
//           accumulators; espbags: bag unions). Reported for trajectory,
//           not gated: whichever way the trade goes, the differential
//           tests pin the reports to be identical.
//
// Emits BENCH_vc.json (see --out) in the shared schema validated by
// tools/check_bench.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "race/Detect.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstring>
#include <string>
#include <vector>

using namespace tdr;

namespace {

struct Config {
  uint32_t Locs;       ///< elements touched per task / per scan
  uint32_t Tasks;      ///< parallel tasks per repetition (or per round)
  uint32_t Rounds;     ///< sequential finish rounds (finish family)
  uint32_t WriteSteps; ///< serial writer scans (access family)
};

/// Access-heavy round: one finish of parallel readers over a shared range,
/// then serial writer scans of the same range (identical to the
/// bench_detector workload, so numbers are comparable across reports).
uint64_t emitAccessRound(ExecMonitor &Mon, const Config &C) {
  Mon.onFinishEnter(nullptr, nullptr);
  for (uint32_t T = 0; T != C.Tasks; ++T) {
    Mon.onAsyncEnter(nullptr, nullptr);
    Mon.onStepPoint(nullptr);
    for (uint32_t L = 0; L != C.Locs; ++L)
      Mon.onRead(MemLoc::elem(1, L));
    Mon.onAsyncExit(nullptr);
  }
  Mon.onFinishExit(nullptr);
  for (uint32_t W = 0; W != C.WriteSteps; ++W) {
    Mon.onScopeEnter(ScopeKind::Block, nullptr, nullptr, nullptr);
    Mon.onStepPoint(nullptr);
    for (uint32_t L = 0; L != C.Locs; ++L)
      Mon.onWrite(MemLoc::elem(1, L));
    Mon.onScopeExit();
  }
  return static_cast<uint64_t>(C.Locs) * (C.Tasks + C.WriteSteps);
}

/// Finish-heavy round: Rounds sequential finish blocks, each spawning
/// Tasks asyncs that write disjoint ranges, followed by a serial scan
/// reading every element written so far — so each scan's checks look
/// across the completed tasks of all earlier rounds (clock lookups for
/// vc, path-compressed finds for ESP-bags) and every finish exit pays the
/// join cost (clock materialization vs bag union).
uint64_t emitFinishRound(ExecMonitor &Mon, const Config &C) {
  uint64_t Accesses = 0;
  for (uint32_t R = 0; R != C.Rounds; ++R) {
    Mon.onFinishEnter(nullptr, nullptr);
    for (uint32_t T = 0; T != C.Tasks; ++T) {
      Mon.onAsyncEnter(nullptr, nullptr);
      Mon.onStepPoint(nullptr);
      uint64_t Base = static_cast<uint64_t>(R) * C.Tasks + T;
      for (uint32_t L = 0; L != C.Locs; ++L)
        Mon.onWrite(MemLoc::elem(1, Base * C.Locs + L));
      Mon.onAsyncExit(nullptr);
    }
    Mon.onFinishExit(nullptr);
    Mon.onScopeEnter(ScopeKind::Block, nullptr, nullptr, nullptr);
    Mon.onStepPoint(nullptr);
    uint64_t Written = static_cast<uint64_t>(R + 1) * C.Tasks * C.Locs;
    for (uint64_t L = 0; L != Written; ++L)
      Mon.onRead(MemLoc::elem(1, L));
    Mon.onScopeExit();
    Accesses += static_cast<uint64_t>(C.Tasks) * C.Locs + Written;
  }
  return Accesses;
}

struct Measure {
  double Sec = 0;
  uint64_t Accesses = 0;

  double accessesPerSec() const { return Accesses / (Sec > 0 ? Sec : 1e-9); }
};

/// Same best-window protocol as bench_detector: repeat (fresh detector
/// state per call) until MinSec accumulates, doubling the batch, keep the
/// fastest window; one untimed warmup rep first.
template <typename Fn> Measure measure(Fn OneRep, double MinSec) {
  OneRep();
  Measure Best;
  uint64_t Batch = 1;
  double Spent = 0;
  while (Spent < MinSec) {
    Timer T;
    uint64_t Acc = 0;
    for (uint64_t I = 0; I != Batch; ++I)
      Acc += OneRep();
    double Sec = T.elapsedSec();
    Spent += Sec;
    if (Best.Sec == 0 || Acc / Sec > Best.accessesPerSec()) {
      Best.Sec = Sec;
      Best.Accesses = Acc;
    }
    Batch *= 2;
  }
  return Best;
}

/// Runs one workload repetition through \p DetectorT behind the fused
/// monitor — the exact wiring detectRaces uses for either backend.
template <typename DetectorT, typename EmitFn>
Measure run(EspBagsDetector::Mode Mode, const Config &C, EmitFn Emit,
            double MinSec) {
  return measure(
      [&] {
        Dpst Tree;
        DpstBuilder Builder(Tree);
        DetectorT Det(Mode, Builder);
        FusedDetectMonitor<DetectorT> Fused(Builder, Det);
        ExecMonitor &Mon = Fused;
        return Emit(Mon, C);
      },
      MinSec);
}

const char *modeName(EspBagsDetector::Mode M) {
  return M == EspBagsDetector::Mode::SRW ? "SRW" : "MRW";
}

void report(bench::JsonReport &Report, const char *Family,
            EspBagsDetector::Mode Mode, const Config &C, const char *Impl,
            const Measure &M, double SpeedupVsEspBags) {
  std::string Name =
      strFormat("%s/%s/locs%u/t%u/r%u/%s", Family, modeName(Mode), C.Locs,
                C.Tasks, C.Rounds ? C.Rounds : C.WriteSteps, Impl);
  bench::JsonRecord &Rec = Report.add();
  Rec.str("name", Name)
      .str("family", Family)
      .str("mode", modeName(Mode))
      .str("impl", Impl)
      .num("locs", static_cast<uint64_t>(C.Locs))
      .num("tasks", static_cast<uint64_t>(C.Tasks))
      .num("total_accesses", M.Accesses)
      .num("seconds", M.Sec)
      .num("accesses_per_sec", M.accessesPerSec());
  if (SpeedupVsEspBags > 0)
    Rec.num("speedup_vs_espbags", SpeedupVsEspBags);
  std::printf("%-34s %12.0f acc/s%s\n", Name.c_str(), M.accessesPerSec(),
              SpeedupVsEspBags > 0
                  ? strFormat("  (%.2fx vs espbags)", SpeedupVsEspBags).c_str()
                  : "");
}

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);
  bool Quick = false;
  std::string OutPath = "BENCH_vc.json";
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
  }

  const double MinSec = Quick ? 0.002 : 0.08;
  bench::JsonReport Report("vc");
  double WorstParity = 0;

  // Access family: per-access check cost head to head.
  std::vector<Config> AccessSweep =
      Quick ? std::vector<Config>{{256, 4, 0, 2}, {4096, 4, 0, 2}}
            : std::vector<Config>{{256, 4, 0, 4},
                                  {4096, 4, 0, 4},
                                  {65536, 16, 0, 4}};
  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    bench::banner(
        strFormat("%s access-heavy (accesses/sec)", modeName(Mode)));
    for (const Config &C : AccessSweep) {
      Measure Esp =
          run<EspBagsDetector>(Mode, C, emitAccessRound, MinSec);
      Measure Vc =
          run<VectorClockDetector>(Mode, C, emitAccessRound, MinSec);
      double Parity = Vc.accessesPerSec() / Esp.accessesPerSec();
      report(Report, "access", Mode, C, "espbags", Esp, 0);
      report(Report, "access", Mode, C, "vc", Vc, Parity);
      if (WorstParity == 0 || Parity < WorstParity)
        WorstParity = Parity;
    }
  }

  // Finish family: structure-side (join) cost head to head.
  std::vector<Config> FinishSweep =
      Quick ? std::vector<Config>{{16, 8, 4, 0}}
            : std::vector<Config>{{32, 8, 8, 0}, {16, 64, 8, 0}};
  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    bench::banner(
        strFormat("%s finish-heavy (accesses/sec)", modeName(Mode)));
    for (const Config &C : FinishSweep) {
      Measure Esp =
          run<EspBagsDetector>(Mode, C, emitFinishRound, MinSec);
      Measure Vc =
          run<VectorClockDetector>(Mode, C, emitFinishRound, MinSec);
      report(Report, "finish", Mode, C, "espbags", Esp, 0);
      report(Report, "finish", Mode, C, "vc", Vc,
             Vc.accessesPerSec() / Esp.accessesPerSec());
    }
  }

  bench::banner("Summary");
  std::printf("worst access-family vc parity vs espbags: %.2fx\n",
              WorstParity);

  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_vc: failed to write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", OutPath.c_str(),
              Report.numRecords());
  return 0;
}
