//===- BenchUtil.h - Shared table-printing helpers ---------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table/figure harnesses. Each bench binary
/// regenerates one table or figure of the paper's evaluation (§7) and
/// prints it in a fixed-width layout comparable with the original.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_BENCH_BENCHUTIL_H
#define TDR_BENCH_BENCHUTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace tdr {
namespace bench {

/// Prints a horizontal rule sized to the previous header.
inline void rule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void banner(const std::string &Title) {
  std::printf("\n%s\n", Title.c_str());
  rule(static_cast<int>(Title.size()));
}

} // namespace bench
} // namespace tdr

#endif // TDR_BENCH_BENCHUTIL_H
