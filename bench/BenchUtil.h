//===- BenchUtil.h - Shared table-printing helpers ---------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table/figure harnesses. Each bench binary
/// regenerates one table or figure of the paper's evaluation (§7) and
/// prints it in a fixed-width layout comparable with the original.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_BENCH_BENCHUTIL_H
#define TDR_BENCH_BENCHUTIL_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace tdr {
namespace bench {

/// Parses the shared `--jobs N` flag (how many repair/grading jobs run
/// concurrently); defaults to 1 (serial), matching the paper's setup.
inline unsigned parseJobsFlag(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (!std::strcmp(Argv[I], "--jobs")) {
      long V = std::atol(Argv[I + 1]);
      if (V >= 1 && V <= 1 << 10)
        return static_cast<unsigned>(V);
      std::fprintf(stderr, "bench: ignoring invalid --jobs '%s'\n",
                   Argv[I + 1]);
    }
  return 1;
}

/// Prints a horizontal rule sized to the previous header.
inline void rule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void banner(const std::string &Title) {
  std::printf("\n%s\n", Title.c_str());
  rule(static_cast<int>(Title.size()));
}

/// Attaches the tracer / metrics sinks to a bench harness so table
/// reproductions emit flamegraph-able traces. Construct it first thing in
/// main with argc/argv; it understands
///
///   --trace FILE         enable tracing, write FILE at exit (Chrome trace
///                        JSON, or JSONL when FILE ends in .jsonl)
///   --metrics-json FILE  dump the metrics registry at exit
///
/// The TDR_TRACE environment variable (handled by obs::Tracer itself)
/// keeps working with or without this helper.
class ObsSession {
public:
  ObsSession(int Argc, char **Argv) {
    for (int I = 1; I != Argc; ++I) {
      if (!std::strcmp(Argv[I], "--trace") && I + 1 != Argc) {
        TracePath = Argv[++I];
        obs::Tracer::global().enable();
      } else if (!std::strcmp(Argv[I], "--metrics-json") && I + 1 != Argc) {
        MetricsPath = Argv[++I];
      }
    }
  }

  ~ObsSession() {
    if (!TracePath.empty()) {
      if (obs::Tracer::global().writeTo(TracePath))
        std::fprintf(stderr, "bench: wrote trace to %s (%zu events)\n",
                     TracePath.c_str(), obs::Tracer::global().numEvents());
      else
        std::fprintf(stderr, "bench: failed to write trace to %s\n",
                     TracePath.c_str());
    }
    if (!MetricsPath.empty()) {
      if (obs::MetricsRegistry::global().writeJson(MetricsPath))
        std::fprintf(stderr, "bench: wrote metrics to %s\n",
                     MetricsPath.c_str());
      else
        std::fprintf(stderr, "bench: failed to write metrics to %s\n",
                     MetricsPath.c_str());
    }
  }

  ObsSession(const ObsSession &) = delete;
  ObsSession &operator=(const ObsSession &) = delete;

private:
  std::string TracePath;
  std::string MetricsPath;
};

} // namespace bench
} // namespace tdr

#endif // TDR_BENCH_BENCHUTIL_H
