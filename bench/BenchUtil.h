//===- BenchUtil.h - Shared table-printing helpers ---------------*- C++ -*-===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table/figure harnesses. Each bench binary
/// regenerates one table or figure of the paper's evaluation (§7) and
/// prints it in a fixed-width layout comparable with the original.
///
//===----------------------------------------------------------------------===//

#ifndef TDR_BENCH_BENCHUTIL_H
#define TDR_BENCH_BENCHUTIL_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace tdr {
namespace bench {

/// Parses the shared `--jobs N` flag (how many repair/grading jobs run
/// concurrently); defaults to 1 (serial), matching the paper's setup.
inline unsigned parseJobsFlag(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (!std::strcmp(Argv[I], "--jobs")) {
      long V = std::atol(Argv[I + 1]);
      if (V >= 1 && V <= 1 << 10)
        return static_cast<unsigned>(V);
      std::fprintf(stderr, "bench: ignoring invalid --jobs '%s'\n",
                   Argv[I + 1]);
    }
  return 1;
}

/// Prints a horizontal rule sized to the previous header.
inline void rule(int Width) {
  for (int I = 0; I < Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void banner(const std::string &Title) {
  std::printf("\n%s\n", Title.c_str());
  rule(static_cast<int>(Title.size()));
}

/// Attaches the tracer / metrics sinks to a bench harness so table
/// reproductions emit flamegraph-able traces. Construct it first thing in
/// main with argc/argv; it understands
///
///   --trace FILE         enable tracing, write FILE at exit (Chrome trace
///                        JSON, or JSONL when FILE ends in .jsonl)
///   --metrics-json FILE  dump the metrics registry at exit
///
/// The TDR_TRACE environment variable (handled by obs::Tracer itself)
/// keeps working with or without this helper.
class ObsSession {
public:
  ObsSession(int Argc, char **Argv) {
    for (int I = 1; I != Argc; ++I) {
      if (!std::strcmp(Argv[I], "--trace") && I + 1 != Argc) {
        TracePath = Argv[++I];
        obs::Tracer::global().enable();
      } else if (!std::strcmp(Argv[I], "--metrics-json") && I + 1 != Argc) {
        MetricsPath = Argv[++I];
      }
    }
  }

  ~ObsSession() {
    if (!TracePath.empty()) {
      if (obs::Tracer::global().writeTo(TracePath))
        std::fprintf(stderr, "bench: wrote trace to %s (%zu events)\n",
                     TracePath.c_str(), obs::Tracer::global().numEvents());
      else
        std::fprintf(stderr, "bench: failed to write trace to %s\n",
                     TracePath.c_str());
    }
    if (!MetricsPath.empty()) {
      if (obs::MetricsRegistry::global().writeJson(MetricsPath))
        std::fprintf(stderr, "bench: wrote metrics to %s\n",
                     MetricsPath.c_str());
      else
        std::fprintf(stderr, "bench: failed to write metrics to %s\n",
                     MetricsPath.c_str());
    }
  }

  ObsSession(const ObsSession &) = delete;
  ObsSession &operator=(const ObsSession &) = delete;

private:
  std::string TracePath;
  std::string MetricsPath;
};

//===----------------------------------------------------------------------===//
// Machine-readable benchmark reports
//===----------------------------------------------------------------------===//

/// One result row of a JSON benchmark report: an ordered set of key/value
/// fields rendered into a flat JSON object.
class JsonRecord {
public:
  JsonRecord &str(const char *Key, const std::string &V) {
    std::string Quoted = "\"";
    Quoted += escape(V);
    Quoted += '"';
    return raw(Key, Quoted);
  }
  JsonRecord &num(const char *Key, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    return raw(Key, Buf);
  }
  JsonRecord &num(const char *Key, uint64_t V) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(V));
    return raw(Key, Buf);
  }
  JsonRecord &boolean(const char *Key, bool V) {
    return raw(Key, V ? "true" : "false");
  }

  std::string render() const {
    std::string Out = "{";
    for (size_t I = 0; I != Fields.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "\"" + Fields[I].first + "\": " + Fields[I].second;
    }
    Out += "}";
    return Out;
  }

private:
  static std::string escape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
        continue;
      }
      Out += C;
    }
    return Out;
  }

  JsonRecord &raw(const char *Key, const std::string &Rendered) {
    Fields.emplace_back(Key, Rendered);
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> Fields;
};

/// Collects JSON records and writes the shared BENCH_*.json layout:
///
///   { "bench": "<name>", "schema_version": 1,
///     "results": [ {...}, {...} ] }
///
/// tools/check_bench.py validates this schema in CI; perf PRs diff the
/// emitted files to leave a measured trajectory (see README "Performance").
class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Bench(std::move(BenchName)) {}

  JsonRecord &add() {
    Records.emplace_back();
    return Records.back();
  }

  size_t numRecords() const { return Records.size(); }

  bool writeTo(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    std::fprintf(F, "{\n  \"bench\": \"%s\",\n  \"schema_version\": 1,\n"
                    "  \"results\": [\n",
                 Bench.c_str());
    for (size_t I = 0; I != Records.size(); ++I)
      std::fprintf(F, "    %s%s\n", Records[I].render().c_str(),
                   I + 1 == Records.size() ? "" : ",");
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    return true;
  }

private:
  std::string Bench;
  std::vector<JsonRecord> Records;
};

} // namespace bench
} // namespace tdr

#endif // TDR_BENCH_BENCHUTIL_H
