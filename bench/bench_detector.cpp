//===- bench_detector.cpp - Detector fast-path microbenchmark -------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Measures raw race-detector throughput (shared-memory accesses checked per
// second) by driving the DPST builder + detector with synthetic monitor
// event streams — no parser or interpreter in the loop, so the numbers
// isolate the per-access detector cost the paper's scalability story (§4.1,
// Table 2) hinges on.
//
// The sweep covers locations × writer-steps × readers-per-location for the
// SRW and MRW variants, comparing:
//
//   map          the frozen pre-fast-path detector (hash-map shadow memory,
//                vector access lists, MonitorPipeline dispatch)
//   flat         the flat-shadow fast path (paged direct-map shadow,
//                inline-capacity-2 small vectors, fused monitor dispatch)
//   flat-compact flat + MRW reader-list compaction (threshold 8)
//
// The event pattern per repetition is race-free — parallel readers joined
// by a finish, then serial writer steps that scan the reader lists — so no
// time is spent in race recording and the numbers are pure detection
// overhead, the common case when validating repaired programs.
//
// Emits BENCH_detector.json (see --out) in the shared schema validated by
// tools/check_bench.py, so perf work on the detector leaves a measured
// trajectory.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "race/Detect.h"
#include "race/RefDetectors.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstring>
#include <string>
#include <vector>

using namespace tdr;

namespace {

struct Config {
  uint32_t Locs;        ///< distinct array elements touched
  uint32_t Readers;     ///< parallel reader tasks per repetition
  uint32_t WriteSteps;  ///< serial writer steps per repetition
};

/// Streams one repetition of the workload into \p Mon:
///
///   finish { Readers × async { read all Locs } }   // builds reader lists
///   WriteSteps × scope { write all Locs }          // scans reader lists
///
/// Returns the number of read/write accesses emitted.
uint64_t emitRound(ExecMonitor &Mon, const Config &C) {
  Mon.onFinishEnter(nullptr, nullptr);
  for (uint32_t R = 0; R != C.Readers; ++R) {
    Mon.onAsyncEnter(nullptr, nullptr);
    Mon.onStepPoint(nullptr);
    for (uint32_t L = 0; L != C.Locs; ++L)
      Mon.onRead(MemLoc::elem(1, L));
    Mon.onAsyncExit(nullptr);
  }
  Mon.onFinishExit(nullptr);
  for (uint32_t W = 0; W != C.WriteSteps; ++W) {
    Mon.onScopeEnter(ScopeKind::Block, nullptr, nullptr, nullptr);
    Mon.onStepPoint(nullptr);
    for (uint32_t L = 0; L != C.Locs; ++L)
      Mon.onWrite(MemLoc::elem(1, L));
    Mon.onScopeExit();
  }
  return static_cast<uint64_t>(C.Locs) * (C.Readers + C.WriteSteps);
}

struct Measure {
  double Sec = 0;
  uint64_t Accesses = 0;

  double accessesPerSec() const { return Accesses / (Sec > 0 ? Sec : 1e-9); }
};

/// Repeats \p OneRep (fresh detector state per call) until \p MinSec of
/// wall-clock time accumulates, growing the batch geometrically, and
/// returns the fastest timed window. One untimed warmup rep faults in
/// lazily allocated state so a cold-start stall in the first window cannot
/// masquerade as steady-state throughput.
template <typename Fn> Measure measure(Fn OneRep, double MinSec) {
  OneRep();
  Measure Best;
  uint64_t Batch = 1;
  double Spent = 0;
  while (Spent < MinSec) {
    Timer T;
    uint64_t Acc = 0;
    for (uint64_t I = 0; I != Batch; ++I)
      Acc += OneRep();
    double Sec = T.elapsedSec();
    Spent += Sec;
    if (Best.Sec == 0 || Acc / Sec > Best.accessesPerSec()) {
      Best.Sec = Sec;
      Best.Accesses = Acc;
    }
    Batch *= 2;
  }
  return Best;
}

/// Pre-fast-path wiring: builder and map-shadow detector fanned out by a
/// MonitorPipeline, exactly as detectRaces dispatched before the change.
Measure runMap(EspBagsDetector::Mode Mode, const Config &C, double MinSec) {
  return measure(
      [&] {
        Dpst Tree;
        DpstBuilder Builder(Tree);
        RefEspBagsDetector Det(Mode, Builder);
        MonitorPipeline Pipeline;
        Pipeline.add(&Builder);
        Pipeline.add(&Det);
        ExecMonitor &Mon = Pipeline;
        return emitRound(Mon, C);
      },
      MinSec);
}

/// Fast-path wiring: flat-shadow detector behind the fused monitor, as
/// detectRaces dispatches today. \p CompactThreshold 0 disables reader
/// compaction.
Measure runFlat(EspBagsDetector::Mode Mode, const Config &C, double MinSec,
                uint32_t CompactThreshold) {
  return measure(
      [&] {
        Dpst Tree;
        DpstBuilder Builder(Tree);
        EspBagsDetector Det(Mode, Builder);
        Det.setReaderCompaction(CompactThreshold);
        FusedDetectMonitor<EspBagsDetector> Fused(Builder, Det);
        ExecMonitor &Mon = Fused;
        return emitRound(Mon, C);
      },
      MinSec);
}

const char *modeName(EspBagsDetector::Mode M) {
  return M == EspBagsDetector::Mode::SRW ? "SRW" : "MRW";
}

void report(bench::JsonReport &Report, EspBagsDetector::Mode Mode,
            const Config &C, const char *Impl, const Measure &M,
            double SpeedupVsMap) {
  std::string Name = strFormat("%s/locs%u/r%u/w%u/%s", modeName(Mode), C.Locs,
                               C.Readers, C.WriteSteps, Impl);
  bench::JsonRecord &Rec = Report.add();
  Rec.str("name", Name)
      .str("mode", modeName(Mode))
      .str("impl", Impl)
      .num("locs", static_cast<uint64_t>(C.Locs))
      .num("readers", static_cast<uint64_t>(C.Readers))
      .num("write_steps", static_cast<uint64_t>(C.WriteSteps))
      .num("total_accesses", M.Accesses)
      .num("seconds", M.Sec)
      .num("accesses_per_sec", M.accessesPerSec());
  if (SpeedupVsMap > 0)
    Rec.num("speedup_vs_map", SpeedupVsMap);
  std::printf("%-28s %12.0f acc/s%s\n", Name.c_str(), M.accessesPerSec(),
              SpeedupVsMap > 0
                  ? strFormat("  (%.2fx vs map)", SpeedupVsMap).c_str()
                  : "");
}

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);
  bool Quick = false;
  std::string OutPath = "BENCH_detector.json";
  uint32_t CompactThreshold = 8;
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--compact") && I + 1 != Argc)
      CompactThreshold = static_cast<uint32_t>(std::atol(Argv[++I]));
  }

  const double MinSec = Quick ? 0.002 : 0.08;
  std::vector<uint32_t> LocSweep = Quick ? std::vector<uint32_t>{64, 256}
                                         : std::vector<uint32_t>{64, 4096, 65536};
  std::vector<uint32_t> ReaderSweep =
      Quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 4, 16};
  const uint32_t WriteSteps = Quick ? 2 : 4;

  bench::JsonReport Report("detector");
  double LargeArrayMrwSpeedup = 0;
  uint32_t LargestLocs = LocSweep.back();

  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    bench::banner(strFormat("%s detector throughput (accesses/sec)",
                            modeName(Mode)));
    for (uint32_t Locs : LocSweep) {
      for (uint32_t Readers : ReaderSweep) {
        Config C{Locs, Readers, WriteSteps};
        Measure Map = runMap(Mode, C, MinSec);
        Measure Flat = runFlat(Mode, C, MinSec, /*CompactThreshold=*/0);
        double Speedup = Flat.accessesPerSec() / Map.accessesPerSec();
        report(Report, Mode, C, "map", Map, 0);
        report(Report, Mode, C, "flat", Flat, Speedup);
        if (Mode == EspBagsDetector::Mode::MRW) {
          if (Locs == LargestLocs && Speedup > LargeArrayMrwSpeedup)
            LargeArrayMrwSpeedup = Speedup;
          Measure Compact = runFlat(Mode, C, MinSec, CompactThreshold);
          report(Report, Mode, C, "flat-compact", Compact,
                 Compact.accessesPerSec() / Map.accessesPerSec());
        }
      }
    }
  }

  bench::banner("Summary");
  std::printf("large-array MRW sweep (locs=%u) best flat speedup: %.2fx\n",
              LargestLocs, LargeArrayMrwSpeedup);

  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_detector: failed to write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", OutPath.c_str(),
              Report.numRecords());
  return 0;
}
