//===- bench_table3.cpp - Table 3: SRW vs MRW ESP-bags --------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Regenerates Table 3: detection time, repair time, and (for SRW) the
// second detection run, for both ESP-bags variants on the repair input.
// The paper's observation to reproduce: totals are comparable for most
// benchmarks, but MRW repair is markedly slower where it reports far more
// races (mergesort-like patterns), while SRW needs an extra iteration to
// confirm convergence.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "suite/Experiment.h"

using namespace tdr;
using namespace tdr::bench;

int main(int Argc, char **Argv) {
  ObsSession Obs(Argc, Argv);
  banner("Table 3: Comparison of SRW ESP-Bags and MRW ESP-Bags "
         "(repair input)");
  std::printf("%-14s | %12s %12s | %12s %12s | %12s | %10s %10s\n",
              "Benchmark", "Detect SRW", "Detect MRW", "Repair SRW(s)",
              "Repair MRW(s)", "2nd Det SRW", "Total SRW", "Total MRW");
  rule(122);
  for (const BenchmarkSpec &B : allBenchmarks()) {
    RepairExperiment Srw =
        runRepairExperiment(B, EspBagsDetector::Mode::SRW);
    RepairExperiment Mrw =
        runRepairExperiment(B, EspBagsDetector::Mode::MRW);
    double SrwTotal =
        (Srw.DetectMs + Srw.SecondDetectMs) / 1000.0 + Srw.RepairSecs;
    double MrwTotal = Mrw.DetectMs / 1000.0 + Mrw.RepairSecs;
    std::printf("%-14s | %10.2fms %10.2fms | %13.3f %13.3f | %10.2fms | "
                "%9.3fs %9.3fs%s%s\n",
                B.Name, Srw.DetectMs, Mrw.DetectMs, Srw.RepairSecs,
                Mrw.RepairSecs, Srw.SecondDetectMs, SrwTotal, MrwTotal,
                Srw.Ok ? "" : "  [SRW FAILED]",
                Mrw.Ok ? "" : "  [MRW FAILED]");
  }
  std::printf("\nSRW totals include the confirming second detection run "
              "(paper §7.3).\n");
  return 0;
}
