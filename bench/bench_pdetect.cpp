//===- bench_pdetect.cpp - Partitioned detection scaling harness ----------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Scaling curve of the partitioned detection backend (race/ParDetect):
// each workload is recorded ONCE into an EventLog, then parDetectReplay
// re-detects over the identical log at 1/2/4/8 workers, so the numbers
// isolate the partition/scan/merge pipeline (sequential label pre-pass +
// parallel per-chunk scan + parallel per-location merge) from the
// interpreter. An ESP-bags replay over the same log anchors the absolute
// cost of the sequential reference.
//
// Two workload families:
//
//   large  many locations, each touched by one step per sequential round
//          — per location the merge phase folds R summaries (O(R^2) pair
//          checks under MRW), so the parallel phases dominate the
//          sequential pre-pass. This is the family the CI gate holds to
//          >= 2.0x at 4 workers (tools/check_bench.py
//          --min-speedup large/MRW/w4:2.0 — applied on hosts with >= 4
//          cores; a 1-core host cannot exhibit parallel speedup).
//   suite  the shape of the test-suite programs: one finish of tasks
//          hammering a shared counter plus private ranges, then a serial
//          verification scan. Small and racy, so it exercises the
//          cross-chunk witness fold; reported for trajectory, not gated.
//
// Every configuration also cross-checks renderRaceReportKey against the
// ESP-bags replay before timing — a scaling number for a wrong report
// would be meaningless.
//
// Emits BENCH_pdetect.json (see --out) in the shared schema validated by
// tools/check_bench.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "race/Detect.h"
#include "race/ParDetect.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "trace/EventLog.h"
#include "trace/Replay.h"

#include <cstring>
#include <string>
#include <vector>

using namespace tdr;

namespace {

struct Config {
  uint32_t Tasks;  ///< asyncs per round (large) / per finish (suite)
  uint32_t Locs;   ///< locations per async
  uint32_t Rounds; ///< sequential rounds (large) / serial scans (suite)
};

/// Large family: Rounds sequential finishes, each spawning Tasks asyncs
/// that write the SAME Tasks*Locs locations every round. Rounds are
/// joined, so the log is race-free, but every location accumulates one
/// access summary per round — the merge phase pays O(Rounds^2) ordered()
/// checks per location under MRW while the pre-pass pays O(Rounds).
uint64_t emitLarge(ExecMonitor &Mon, const Config &C) {
  for (uint32_t R = 0; R != C.Rounds; ++R) {
    Mon.onFinishEnter(nullptr, nullptr);
    for (uint32_t T = 0; T != C.Tasks; ++T) {
      Mon.onAsyncEnter(nullptr, nullptr);
      Mon.onStepPoint(nullptr);
      for (uint32_t L = 0; L != C.Locs; ++L)
        Mon.onWrite(MemLoc::elem(1, static_cast<uint64_t>(T) * C.Locs + L));
      Mon.onAsyncExit(nullptr);
    }
    Mon.onFinishExit(nullptr);
  }
  return static_cast<uint64_t>(C.Rounds) * C.Tasks * C.Locs;
}

/// Suite family: one unjoined-counter shape per round — Tasks asyncs each
/// read-modify-write a shared counter and write a private range, then a
/// serial step scans everything back. The counter accesses race pairwise
/// across all Tasks asyncs, so the merge phase folds real witness
/// candidates across chunks.
uint64_t emitSuite(ExecMonitor &Mon, const Config &C) {
  uint64_t Accesses = 0;
  for (uint32_t R = 0; R != C.Rounds; ++R) {
    Mon.onFinishEnter(nullptr, nullptr);
    for (uint32_t T = 0; T != C.Tasks; ++T) {
      Mon.onAsyncEnter(nullptr, nullptr);
      Mon.onStepPoint(nullptr);
      Mon.onRead(MemLoc::elem(1, 0));
      Mon.onWrite(MemLoc::elem(1, 0));
      for (uint32_t L = 0; L != C.Locs; ++L)
        Mon.onWrite(MemLoc::elem(2, static_cast<uint64_t>(T) * C.Locs + L));
      Mon.onAsyncExit(nullptr);
    }
    Mon.onFinishExit(nullptr);
    Mon.onScopeEnter(ScopeKind::Block, nullptr, nullptr, nullptr);
    Mon.onStepPoint(nullptr);
    for (uint64_t L = 0; L != static_cast<uint64_t>(C.Tasks) * C.Locs; ++L)
      Mon.onRead(MemLoc::elem(2, L));
    Mon.onScopeExit();
    Accesses += static_cast<uint64_t>(C.Tasks) * (C.Locs + 2) +
                static_cast<uint64_t>(C.Tasks) * C.Locs;
  }
  return Accesses;
}

struct Measure {
  double Sec = 0;
  uint64_t Accesses = 0;

  double accessesPerSec() const { return Accesses / (Sec > 0 ? Sec : 1e-9); }
};

/// Best-window protocol shared with the other bench harnesses: repeat
/// (fresh detector state per call) until MinSec accumulates, doubling the
/// batch, keep the fastest window; one untimed warmup rep first.
template <typename Fn> Measure measure(Fn OneRep, double MinSec) {
  OneRep();
  Measure Best;
  uint64_t Batch = 1;
  double Spent = 0;
  while (Spent < MinSec) {
    Timer T;
    uint64_t Acc = 0;
    for (uint64_t I = 0; I != Batch; ++I)
      Acc += OneRep();
    double Sec = T.elapsedSec();
    Spent += Sec;
    if (Best.Sec == 0 || Acc / Sec > Best.accessesPerSec()) {
      Best.Sec = Sec;
      Best.Accesses = Acc;
    }
    Batch *= 2;
  }
  return Best;
}

/// Records one emission of \p Emit into a replayable trace.
template <typename EmitFn>
uint64_t record(trace::InputTrace &T, const Config &C, EmitFn Emit) {
  trace::RecorderMonitor Recorder(T.Log);
  uint64_t Accesses = Emit(Recorder, C);
  Recorder.flush();
  return Accesses;
}

/// One ESP-bags replay over the recorded log (the sequential reference).
Detection espReplay(EspBagsDetector::Mode Mode, const trace::InputTrace &T) {
  Detection D;
  D.Tree = std::make_unique<Dpst>();
  DpstBuilder Builder(*D.Tree);
  EspBagsDetector Det(Mode, Builder);
  FusedDetectMonitor<EspBagsDetector> Fused(Builder, Det);
  trace::replayEvents(T.Log, trace::ReplayPlan(), Fused);
  D.Report = Det.takeReport();
  return D;
}

/// One partitioned replay over the recorded log at \p Workers workers.
Detection parReplay(EspBagsDetector::Mode Mode, const trace::InputTrace &T,
                    unsigned Workers) {
  DetectOptions O;
  O.Mode = Mode;
  O.Backend = DetectBackend::Par;
  O.ParWorkers = Workers;
  return parDetectReplay(O, T, trace::ReplayPlan());
}

const char *modeName(EspBagsDetector::Mode M) {
  return M == EspBagsDetector::Mode::SRW ? "SRW" : "MRW";
}

void report(bench::JsonReport &Report, const char *Family,
            EspBagsDetector::Mode Mode, const Config &C, const char *Impl,
            unsigned Workers, uint64_t Events, const Measure &M,
            double SpeedupVs1, double SpeedupVsEsp) {
  std::string Name =
      strFormat("%s/%s/w%u/t%u/l%u/r%u/%s", Family, modeName(Mode), Workers,
                C.Tasks, C.Locs, C.Rounds, Impl);
  bench::JsonRecord &Rec = Report.add();
  Rec.str("name", Name)
      .str("family", Family)
      .str("mode", modeName(Mode))
      .str("impl", Impl)
      .num("workers", static_cast<uint64_t>(Workers))
      .num("events", Events)
      .num("total_accesses", M.Accesses)
      .num("seconds", M.Sec)
      .num("accesses_per_sec", M.accessesPerSec());
  if (SpeedupVs1 > 0)
    Rec.num("speedup_vs_1worker", SpeedupVs1);
  if (SpeedupVsEsp > 0)
    Rec.num("speedup_vs_espbags", SpeedupVsEsp);
  std::printf("%-36s %12.0f acc/s%s\n", Name.c_str(), M.accessesPerSec(),
              SpeedupVs1 > 0
                  ? strFormat("  (%.2fx vs 1 worker)", SpeedupVs1).c_str()
                  : "");
}

/// Times the full worker sweep for one recorded workload, after checking
/// all worker counts produce the ESP-bags report byte for byte.
template <typename EmitFn>
bool sweep(bench::JsonReport &Report, const char *Family,
           EspBagsDetector::Mode Mode, const Config &C, EmitFn Emit,
           double MinSec) {
  trace::InputTrace T;
  uint64_t Accesses = record(T, C, Emit);
  uint64_t Events = T.Log.size();

  std::string RefKey = renderRaceReportKey(espReplay(Mode, T).Report);
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    std::string Key = renderRaceReportKey(parReplay(Mode, T, W).Report);
    if (Key != RefKey) {
      std::fprintf(stderr,
                   "bench_pdetect: %s/%s report differs from espbags at "
                   "%u workers\n",
                   Family, modeName(Mode), W);
      return false;
    }
  }

  Measure Esp = measure(
      [&] {
        espReplay(Mode, T);
        return Accesses;
      },
      MinSec);
  report(Report, Family, Mode, C, "espbags", 1, Events, Esp, 0, 0);

  double Rate1 = 0;
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    Measure M = measure(
        [&] {
          parReplay(Mode, T, W);
          return Accesses;
        },
        MinSec);
    if (W == 1)
      Rate1 = M.accessesPerSec();
    report(Report, Family, Mode, C, "par", W, Events, M,
           Rate1 > 0 ? M.accessesPerSec() / Rate1 : 0,
           M.accessesPerSec() / Esp.accessesPerSec());
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);
  bool Quick = false;
  std::string OutPath = "BENCH_pdetect.json";
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
  }

  const double MinSec = Quick ? 0.002 : 0.08;
  bench::JsonReport Report("pdetect");
  bool Ok = true;

  std::vector<Config> LargeSweep =
      Quick ? std::vector<Config>{{4, 1024, 24}}
            : std::vector<Config>{{4, 4096, 24}, {16, 1024, 32}};
  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    bench::banner(strFormat("%s large logs (accesses/sec)", modeName(Mode)));
    for (const Config &C : LargeSweep)
      Ok = sweep(Report, "large", Mode, C,
                 [](ExecMonitor &Mon, const Config &Cfg) {
                   return emitLarge(Mon, Cfg);
                 },
                 MinSec) &&
           Ok;
  }

  std::vector<Config> SuiteSweep =
      Quick ? std::vector<Config>{{16, 32, 4}}
            : std::vector<Config>{{16, 32, 8}, {64, 16, 8}};
  for (EspBagsDetector::Mode Mode :
       {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
    bench::banner(
        strFormat("%s suite-shaped logs (accesses/sec)", modeName(Mode)));
    for (const Config &C : SuiteSweep)
      Ok = sweep(Report, "suite", Mode, C,
                 [](ExecMonitor &Mon, const Config &Cfg) {
                   return emitSuite(Mon, Cfg);
                 },
                 MinSec) &&
           Ok;
  }

  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_pdetect: failed to write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", OutPath.c_str(),
              Report.numRecords());
  return Ok ? 0 : 1;
}
