//===- bench_dp_scaling.cpp - Finish placement DP microbenchmark ----------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// google-benchmark microbenchmark of Algorithm 1 (the O(n^3) interval DP)
// and of the dependence-graph crossing precomputation, over synthetic
// graphs of growing size. Documents the practical cost behind the paper's
// remark that "the time taken in practice is very small because n and d
// are small in practice" (§7.2) — and what happens when n is not small.
//
//===----------------------------------------------------------------------===//

#include "repair/FinishPlacement.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace tdr;

namespace {

PlacementProblem syntheticProblem(size_t N, uint64_t Seed) {
  Rng R(Seed);
  PlacementProblem P;
  for (size_t I = 0; I != N; ++I) {
    P.Times.push_back(R.nextInRange(1, 1000));
    P.IsAsync.push_back(R.nextBool(0.6));
  }
  // Sparse forward edges from async sources, ~n/2 edges.
  for (size_t E = 0; E != N / 2; ++E) {
    uint32_t X = static_cast<uint32_t>(R.nextBelow(N - 1));
    if (!P.IsAsync[X])
      continue;
    uint32_t Y = static_cast<uint32_t>(X + 1 + R.nextBelow(N - X - 1));
    P.Edges.push_back({X, Y});
  }
  std::sort(P.Edges.begin(), P.Edges.end());
  P.Edges.erase(std::unique(P.Edges.begin(), P.Edges.end()), P.Edges.end());
  return P;
}

void BM_PlaceFinishes(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  PlacementProblem P = syntheticProblem(N, 42);
  for (auto _ : State) {
    PlacementResult R =
        placeFinishes(P, [](uint32_t, uint32_t) { return true; });
    benchmark::DoNotOptimize(R.Cost);
  }
  State.SetComplexityN(static_cast<benchmark::IterationCount>(N));
}
BENCHMARK(BM_PlaceFinishes)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_BruteForceSmall(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  PlacementProblem P = syntheticProblem(N, 42);
  for (auto _ : State) {
    PlacementResult R =
        bruteForcePlacement(P, [](uint32_t, uint32_t) { return true; });
    benchmark::DoNotOptimize(R.Cost);
  }
}
BENCHMARK(BM_BruteForceSmall)->DenseRange(4, 10, 2);

void BM_EvalPlacementCost(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  PlacementProblem P = syntheticProblem(N, 7);
  PlacementResult R =
      placeFinishes(P, [](uint32_t, uint32_t) { return true; });
  for (auto _ : State)
    benchmark::DoNotOptimize(evalPlacementCost(P, R.Finishes));
}
BENCHMARK(BM_EvalPlacementCost)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
