//===- bench_table4.cpp - Table 4: races detected, SRW vs MRW -------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Regenerates Table 4: the number of data races detected by a single run
// of the SRW and MRW ESP-bags algorithms. The shape to reproduce: MRW >=
// SRW everywhere, with large gaps exactly where many readers/writers share
// locations (mergesort, quicksort, spanning tree) and equality where races
// are few or one-reader-one-writer (nqueens, series, fannkuch, sor,
// crypt, lufact, mandelbrot).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ast/Transforms.h"
#include "race/Detect.h"
#include "sema/Sema.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "suite/Experiment.h"

using namespace tdr;
using namespace tdr::bench;

int main() {
  banner("Table 4: Number of data races detected by SRW and MRW ESP-Bags");
  std::printf("%-14s %16s %16s %14s %14s\n", "Benchmark", "SRW (reports)",
              "MRW (reports)", "SRW (pairs)", "MRW (pairs)");
  rule(80);
  for (const BenchmarkSpec &B : allBenchmarks()) {
    ExecOptions Exec;
    Exec.Args = B.RepairArgs;

    uint64_t Raw[2];
    size_t Pairs[2];
    int Idx = 0;
    for (EspBagsDetector::Mode Mode :
         {EspBagsDetector::Mode::SRW, EspBagsDetector::Mode::MRW}) {
      LoadedBenchmark L = loadBenchmark(B.Source);
      stripFinishes(*L.Prog);
      DiagnosticsEngine Diags;
      runSema(*L.Prog, *L.Ctx, Diags);
      Detection D = detectRaces(*L.Prog, Mode, Exec);
      Raw[Idx] = D.Report.RawCount;
      Pairs[Idx] = D.Report.Pairs.size();
      ++Idx;
    }
    std::printf("%-14s %16s %16s %14s %14s%s\n", B.Name,
                withThousandsSep(Raw[0]).c_str(),
                withThousandsSep(Raw[1]).c_str(),
                withThousandsSep(Pairs[0]).c_str(),
                withThousandsSep(Pairs[1]).c_str(),
                Raw[1] >= Raw[0] ? "" : "  [UNEXPECTED: MRW < SRW]");
  }
  std::printf("\n'reports' counts every conflicting access pair observed "
              "(the paper's metric);\n'pairs' deduplicates by racing step "
              "pair (the repair tool's input).\n");
  return 0;
}
