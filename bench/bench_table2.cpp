//===- bench_table2.cpp - Table 2: time for program repair ----------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Regenerates Table 2: for each benchmark (finishes stripped, MRW ESP-bags
// detection on the repair input): HJ-Seq time, data race detection +
// S-DPST construction time, number of S-DPST nodes, number of data races
// reported, and repair time. Absolute times are this machine's; the shape
// to compare with the paper is the growth of repair time with S-DPST size
// and race count.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "batch/BatchRepair.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"
#include "suite/Experiment.h"

#include <memory>

using namespace tdr;
using namespace tdr::bench;

int main(int Argc, char **Argv) {
  ObsSession Obs(Argc, Argv);
  unsigned Jobs = parseJobsFlag(Argc, Argv);
  banner("Table 2: Time for Program Repair (MRW ESP-bags, repair input)");
  std::printf("%-14s %10s %14s %12s %14s %12s %9s %8s\n", "Benchmark",
              "HJ-Seq(ms)", "Detection(ms)", "S-DPST", "Races(raw)",
              "RacePairs", "Repair(s)", "OK");
  rule(102);

  // Each benchmark repairs in its own metrics scope; with --jobs N the
  // experiments run N-wide and the table still prints in suite order.
  // (Reported times are wall-clock of a possibly-contended run — use
  // --jobs 1, the default, for paper-comparable numbers.)
  std::vector<BenchmarkSpec> Specs = allBenchmarks();
  std::vector<RepairExperiment> Results(Specs.size());
  std::vector<std::unique_ptr<obs::MetricsRegistry>> Registries(Specs.size());
  runJobsOrdered(Specs.size(), Jobs, [&](size_t I) {
    auto Registry = std::make_unique<obs::MetricsRegistry>();
    obs::ScopedMetrics Scope(*Registry);
    Results[I] = runRepairExperiment(Specs[I], EspBagsDetector::Mode::MRW);
    Registries[I] = std::move(Registry);
  });

  for (size_t I = 0; I != Specs.size(); ++I) {
    obs::MetricsRegistry::global().mergeFrom(*Registries[I]);
    const RepairExperiment &R = Results[I];
    std::printf("%-14s %10.2f %14.2f %12s %14s %12s %9.3f %8s\n",
                Specs[I].Name, R.HjSeqMs, R.DetectMs,
                withThousandsSep(R.DpstNodes).c_str(),
                withThousandsSep(R.RawRaces).c_str(),
                withThousandsSep(R.RacePairs).c_str(), R.RepairSecs,
                R.Ok ? "yes" : R.Error.c_str());
  }
  std::printf("\nOK = repaired program is race free for the input and its "
              "output equals the serial elision's.\n");
  return 0;
}
