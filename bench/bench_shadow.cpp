//===- bench_shadow.cpp - Two-level vs dense shadow memory comparison -----===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Head-to-head comparison of the detectors' shadow stores, driven at the
// shadow layer with an EspBags-shaped record (two inline-capacity-2 access
// lists plus a counter) so the numbers transfer to real detection runs:
//
//   dense   the preserved dense direct-map baseline (DenseShadowMemory):
//           array-id-indexed table, per-array PagedArrays dense in the
//           highest touched index
//   sparse  the two-level compressed map (ShadowMemory): hashed top-level
//           table over (array id, index >> 6), 64-cell pages COW-allocated
//           from the shared no-access image, compact slab cells
//
// Workload families:
//
//   sparse-giant    random indices over a 2^30-element span — the shape
//                   the two-level map exists for. CI gates the sparse
//                   footprint at <= 0.1x of dense
//                   (check_bench.py --max-bytes-ratio sparse-giant:0.1).
//   hot-dense       sequential sweeps over a small dense range — dense
//                   direct-map home turf. CI gates sparse wall-clock at
//                   >= 0.9x dense (--min-speedup hot-dense:0.9). The
//                   sparse-run rows drive the same sweep through the
//                   batched forRun page-span entry (what the replay
//                   coalescer feeds detectors); reported for trajectory.
//   random-stride   page-hostile 4097-strided sweeps over a mid-size
//                   span — exercises the top-level probe and the
//                   one-entry page cache miss path. Reported, ungated.
//   spilled-replay  streaming a recorded event log front to back (the
//                   replayEvents access pattern), fully resident vs
//                   spilled to disk with a bounded resident window. CI
//                   gates the spilled peak at <= 0.5x resident
//                   (--max-bytes-ratio spilled-replay:0.5).
//
// Every row reports wall-clock and the peak shadow (or log) bytes of one
// full workload pass; non-baseline rows add speedup_vs_base and
// bytes_ratio_vs_base. Emits BENCH_shadow.json in the shared schema
// validated by tools/check_bench.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "race/ShadowMemory.h"
#include "support/Rng.h"
#include "support/SmallVector.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "trace/EventLog.h"

#include <cstring>
#include <functional>
#include <string>
#include <vector>

using namespace tdr;

namespace {

/// Mirrors EspBagsDetector::Shadow (two inline access lists plus a
/// counter) so page/slab costs match what detection runs pay.
struct Access {
  uint32_t Elem = 0;
  const void *Step = nullptr;
};

struct ShadowRec {
  static constexpr bool AllZeroInit = true;
  SmallVector<Access, 2> Writers;
  SmallVector<Access, 2> Readers;
  uint32_t CompactLimit = 0;
};

/// The per-slot work of a detector check: scan-and-append on the inline
/// lists, bounded so the workload stays allocation-free like the hot path.
inline void touch(ShadowRec &S, uint32_t Task) {
  if (S.Readers.size() < 2)
    S.Readers.push_back({Task, nullptr});
  S.CompactLimit += 1;
}

struct Measure {
  double Sec = 0;
  uint64_t Accesses = 0;

  double accessesPerSec() const { return Accesses / (Sec > 0 ? Sec : 1e-9); }
};

/// One measured implementation in an interleaved comparison.
struct Lane {
  std::function<uint64_t()> Rep; ///< one workload rep, fresh state per call
  Measure Best;                  ///< fastest window seen
  double BestRatioVsBase = 0;    ///< best per-window rate ratio vs lane 0
};

/// Interleaved best-window protocol: all lanes run back to back within
/// each round (equal batch sizes, doubling per round until every lane has
/// spent MinSec), and each non-base lane's speedup is the best per-round
/// rate ratio against lane 0. Measuring the implementations in separate
/// sequential phases is not load-robust — under CI contention the
/// scheduler systematically favors whichever phase runs first, skewing
/// the ratio several-fold — whereas adjacent same-round windows see the
/// same interference, so the ratio stays honest. One untimed warmup rep
/// per lane first.
void measureLanes(std::vector<Lane> &Lanes, double MinSec) {
  for (Lane &L : Lanes)
    L.Rep();
  uint64_t Batch = 1;
  double Spent = 0;
  std::vector<double> Rate(Lanes.size());
  while (Spent < MinSec * Lanes.size()) {
    for (size_t LI = 0; LI != Lanes.size(); ++LI) {
      Timer T;
      uint64_t Acc = 0;
      for (uint64_t I = 0; I != Batch; ++I)
        Acc += Lanes[LI].Rep();
      double Sec = T.elapsedSec();
      Spent += Sec;
      Rate[LI] = Acc / (Sec > 0 ? Sec : 1e-9);
      Measure &B = Lanes[LI].Best;
      if (B.Sec == 0 || Rate[LI] > B.accessesPerSec()) {
        B.Sec = Sec;
        B.Accesses = Acc;
      }
    }
    for (size_t LI = 1; LI < Lanes.size(); ++LI) {
      double R = Rate[LI] / Rate[0];
      if (R > Lanes[LI].BestRatioVsBase)
        Lanes[LI].BestRatioVsBase = R;
    }
    Batch *= 2;
  }
}

//===----------------------------------------------------------------------===//
// Shadow families
//===----------------------------------------------------------------------===//

struct ShadowConfig {
  const char *Family;
  uint64_t Locs;   ///< distinct locations per pass
  uint32_t Passes; ///< workload passes per repetition
};

/// One full workload pass against \p S (ShadowMemory or DenseShadowMemory;
/// both expose slot()). Returns accesses performed.
template <typename ShadowT>
uint64_t runSlotPass(ShadowT &S, const ShadowConfig &C,
                     const std::vector<int64_t> &SparseIdx) {
  uint64_t Acc = 0;
  for (uint32_t P = 0; P != C.Passes; ++P) {
    if (!SparseIdx.empty()) {
      for (int64_t Idx : SparseIdx)
        touch(S.slot(MemLoc::elem(1, Idx)), P);
      Acc += SparseIdx.size();
    } else {
      for (uint64_t I = 0; I != C.Locs; ++I)
        touch(S.slot(MemLoc::elem(1, static_cast<int64_t>(I))), P);
      Acc += C.Locs;
    }
  }
  return Acc;
}

/// The hot-dense sweep through the batched forRun page-span entry — the
/// stream shape the replay run coalescer feeds detectors.
uint64_t runForRunPass(ShadowMemory<ShadowRec> &S, const ShadowConfig &C) {
  uint64_t Acc = 0;
  for (uint32_t P = 0; P != C.Passes; ++P) {
    S.forRun(MemLoc::elem(1, 0), C.Locs,
             [P](ShadowRec &R, MemLoc) { touch(R, P); });
    Acc += C.Locs;
  }
  return Acc;
}

void reportRow(bench::JsonReport &Report, const std::string &Name,
               const char *Family, const char *Impl, uint64_t Locs,
               const Measure &M, size_t BytesPeak, double SpeedupVsBase,
               double BytesRatioVsBase) {
  bench::JsonRecord &Rec = Report.add();
  Rec.str("name", Name)
      .str("family", Family)
      .str("impl", Impl)
      .num("locs", Locs)
      .num("total_accesses", M.Accesses)
      .num("seconds", M.Sec)
      .num("accesses_per_sec", M.accessesPerSec())
      .num("bytes_peak", static_cast<uint64_t>(BytesPeak));
  if (SpeedupVsBase > 0)
    Rec.num("speedup_vs_base", SpeedupVsBase);
  if (BytesRatioVsBase > 0)
    Rec.num("bytes_ratio_vs_base", BytesRatioVsBase);
  std::printf("%-40s %12.0f acc/s %10.1f KiB%s\n", Name.c_str(),
              M.accessesPerSec(), BytesPeak / 1024.0,
              SpeedupVsBase > 0
                  ? strFormat("  (%.2fx, %.4fx bytes)", SpeedupVsBase,
                              BytesRatioVsBase)
                        .c_str()
                  : "");
}

void runShadowFamily(bench::JsonReport &Report, const ShadowConfig &C,
                     const std::vector<int64_t> &SparseIdx, double MinSec,
                     bool WithForRun) {
  std::vector<Lane> Lanes;
  Lanes.push_back({[&C, &SparseIdx] {
                     DenseShadowMemory<ShadowRec> S;
                     return runSlotPass(S, C, SparseIdx);
                   },
                   {},
                   0});
  Lanes.push_back({[&C, &SparseIdx] {
                     ShadowMemory<ShadowRec> S;
                     return runSlotPass(S, C, SparseIdx);
                   },
                   {},
                   0});
  if (WithForRun)
    Lanes.push_back({[&C] {
                       ShadowMemory<ShadowRec> S;
                       return runForRunPass(S, C);
                     },
                     {},
                     0});
  measureLanes(Lanes, MinSec);
  const Measure &Dense = Lanes[0].Best;
  const Measure &Sparse = Lanes[1].Best;

  // Peak footprint of one full workload pass: both stores grow
  // monotonically, so bytesUsed after the pass is the peak.
  size_t DenseBytes, SparseBytes;
  {
    DenseShadowMemory<ShadowRec> S;
    runSlotPass(S, C, SparseIdx);
    DenseBytes = S.bytesUsed();
  }
  {
    ShadowMemory<ShadowRec> S;
    runSlotPass(S, C, SparseIdx);
    SparseBytes = S.bytesUsed();
  }

  std::string Base = strFormat("%s/locs%llu", C.Family,
                               static_cast<unsigned long long>(C.Locs));
  reportRow(Report, Base + "/dense", C.Family, "dense", C.Locs, Dense,
            DenseBytes, 0, 0);
  reportRow(Report, Base + "/sparse", C.Family, "sparse", C.Locs, Sparse,
            SparseBytes, Lanes[1].BestRatioVsBase,
            static_cast<double>(SparseBytes) / DenseBytes);

  if (WithForRun)
    reportRow(Report, Base + "/sparse-run", C.Family, "sparse-run", C.Locs,
              Lanes[2].Best, SparseBytes, Lanes[2].BestRatioVsBase,
              static_cast<double>(SparseBytes) / DenseBytes);
}

//===----------------------------------------------------------------------===//
// Spilled-replay family
//===----------------------------------------------------------------------===//

/// Fills \p Log with a synthetic access-dominated event stream shaped like
/// a recorded detection run (steps delimiting read/write bursts).
void fillLog(trace::EventLog &Log, uint64_t Events) {
  trace::Event Step;
  Step.K = trace::EvKind::StepPoint;
  for (uint64_t I = 0; I != Events; ++I) {
    if (I % 64 == 0)
      Log.push(Step);
    trace::Event E = trace::Event::access(
        I % 3 ? trace::EvKind::Read : trace::EvKind::Write,
        MemLoc::elem(1, static_cast<int64_t>(I % 4096)));
    Log.push(E);
  }
}

void runSpilledReplayFamily(bench::JsonReport &Report, uint64_t Events,
                            size_t Threshold, double MinSec) {
  // Streaming consumer standing in for the replayer: forEach front to
  // back is exactly the replayEvents access pattern.
  auto Stream = [](const trace::EventLog &Log) {
    uint64_t Sum = 0;
    Log.forEach([&](const trace::Event &E) { Sum += E.U + E.Id; });
    return Sum;
  };

  trace::EventLog Resident;
  Resident.setSpillThreshold(0);
  fillLog(Resident, Events);

  trace::EventLog Spilled;
  Spilled.setSpillThreshold(Threshold);
  fillLog(Spilled, Events);

  uint64_t Total = Resident.size();
  static volatile uint64_t Sink = 0;
  std::vector<Lane> Lanes;
  Lanes.push_back({[&Stream, &Resident, Total] {
                     Sink = Sink + Stream(Resident);
                     return Total;
                   },
                   {},
                   0});
  Lanes.push_back({[&Stream, &Spilled, Total] {
                     Sink = Sink + Stream(Spilled);
                     return Total;
                   },
                   {},
                   0});
  measureLanes(Lanes, MinSec);
  const Measure &ResidentM = Lanes[0].Best;
  const Measure &SpilledM = Lanes[1].Best;

  size_t ResidentBytes = Resident.bytesReserved();
  // Peak in-memory footprint while streaming: the bounded resident window
  // plus the 16-chunk sequential readahead buffer forEach allocates.
  size_t SpilledBytes =
      Spilled.bytesResident() + 16 * trace::EventLog::ChunkBytes;

  std::string Base = strFormat("spilled-replay/ev%llu",
                               static_cast<unsigned long long>(Events));
  reportRow(Report, Base + "/resident", "spilled-replay", "resident", Events,
            ResidentM, ResidentBytes, 0, 0);
  reportRow(Report, Base + "/spilled", "spilled-replay", "spilled", Events,
            SpilledM, SpilledBytes, Lanes[1].BestRatioVsBase,
            static_cast<double>(SpilledBytes) / ResidentBytes);

  if (!Spilled.spilled())
    std::fprintf(stderr,
                 "bench_shadow: warning: spill threshold never hit "
                 "(events=%llu threshold=%zu)\n",
                 static_cast<unsigned long long>(Events), Threshold);
}

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);
  bool Quick = false;
  std::string OutPath = "BENCH_shadow.json";
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
  }

  const double MinSec = Quick ? 0.002 : 0.08;
  bench::JsonReport Report("shadow");

  // sparse-giant: random distinct locations over a 2^30-element span.
  {
    bench::banner("sparse-giant (random over 2^30 span)");
    uint64_t Distinct = Quick ? 512 : 4096;
    ShadowConfig C{"sparse-giant", Distinct, 4};
    Rng R(0x00D5EED5);
    std::vector<int64_t> Idx(Distinct);
    for (int64_t &I : Idx)
      I = static_cast<int64_t>(R.nextBelow(1ull << 30));
    runShadowFamily(Report, C, Idx, MinSec, /*WithForRun=*/false);
  }

  // hot-dense: sequential sweeps over a small dense range. The only
  // wall-clock-gated family (the others gate on deterministic byte
  // counts), so even --quick keeps a measurement budget large enough
  // that the best window survives scheduler noise on a loaded CI host.
  {
    bench::banner("hot-dense (sequential sweeps)");
    ShadowConfig C{"hot-dense", 65536, Quick ? 2u : 8u};
    runShadowFamily(Report, C, {}, MinSec < 0.05 ? 0.05 : MinSec,
                    /*WithForRun=*/true);
  }

  // random-stride: page-hostile 4097-stride over a 2^22-element span.
  {
    bench::banner("random-stride (4097-stride over 2^22 span)");
    uint64_t N = Quick ? 4096 : 16384;
    ShadowConfig C{"random-stride", N, 4};
    std::vector<int64_t> Idx(N);
    for (uint64_t I = 0; I != N; ++I)
      Idx[I] = static_cast<int64_t>((I * 4097) % (1ull << 22));
    runShadowFamily(Report, C, Idx, MinSec, /*WithForRun=*/false);
  }

  // spilled-replay: stream a recorded log, resident vs spilled.
  {
    bench::banner("spilled-replay (forEach streaming)");
    uint64_t Events = Quick ? (1ull << 18) : 10000000ull;
    size_t Threshold = (Quick ? 4 : 256) * trace::EventLog::ChunkBytes;
    runSpilledReplayFamily(Report, Events, Threshold, MinSec);
  }

  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_shadow: failed to write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", OutPath.c_str(),
              Report.numRecords());
  return 0;
}
