//===- bench_students.cpp - §7.4: student homework evaluation -------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Regenerates the student homework evaluation (§7.4): 59 quicksort
// submissions graded against the repair tool's own output. The paper
// reports 5 still racy, 29 over-synchronized, 25 matching the tool. The
// real submissions are not public, so the cohort is synthesized from
// placement archetypes in the paper's class proportions (see
// suite/StudentCohort.h); the *grading* — race detection plus critical
// path comparison against the tool's repair — is computed, not assumed.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "suite/StudentCohort.h"

#include <cstdio>
#include <map>

using namespace tdr;
using namespace tdr::bench;

int main(int Argc, char **Argv) {
  ObsSession Obs(Argc, Argv);
  unsigned Jobs = parseJobsFlag(Argc, Argv);
  banner("Section 7.4: grading 59 student quicksort submissions");
  CohortResult R = runStudentCohort(59, 2014, 200, Jobs);
  if (R.Students.empty()) {
    std::printf("FAILED: could not build the tool baseline\n");
    return 1;
  }

  std::map<std::string, std::pair<int, const char *>> ByArchetype;
  for (const StudentResult &S : R.Students) {
    auto &Slot = ByArchetype[S.Archetype];
    Slot.first++;
    Slot.second = studentClassName(S.Graded);
  }
  std::printf("%-52s %6s %-20s\n", "Placement archetype", "Count",
              "Tool's grade");
  rule(80);
  for (const auto &[Name, Info] : ByArchetype)
    std::printf("%-52s %6d %-20s\n", Name.c_str(), Info.first, Info.second);

  std::printf("\nTool repair CPL baseline: %llu work units\n",
              static_cast<unsigned long long>(R.ToolCpl));
  std::printf("\n%-28s %8s %8s\n", "", "paper", "this run");
  rule(48);
  std::printf("%-28s %8d %8d\n", "still had data races", 5, R.NumRacy);
  std::printf("%-28s %8d %8d\n", "over-synchronized", 29, R.NumOverSync);
  std::printf("%-28s %8d %8d\n", "matched the tool's output", 25, R.NumMatch);
  std::printf("\nGrading agreed with the archetype's intended class for "
              "%d/%zu submissions.\n",
              R.GradingAgreements, R.Students.size());
  return 0;
}
