//===- bench_replay.cpp - Record/replay repair speedup harness ------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Measures what record-once / replay-many buys the repair loop: every
// detection run after the first re-feeds the recorded event stream to the
// DPST builder + detector (src/trace) instead of re-interpreting the test
// input. Two numbers per workload:
//
//   * end-to-end — total detection wall-clock of iterations 2..n inside
//     repairProgram, with replay off (every run interprets) vs on;
//   * steady-state — per-detection wall-clock on the repaired program,
//     freshly interpreted vs replayed through the final edit map, measured
//     over repeated runs (min of timed reps, warmed up), which is the
//     number the speedup claim rests on.
//
// Workloads are the Table 1/2 suite benchmarks with their repair-mode
// inputs (finishes stripped first, §7.1), plus the students-assignment
// quicksort at the §7.4 cohort input size.
//
// Emits BENCH_replay.json (see --out) in the shared schema validated by
// tools/check_bench.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ast/AstContext.h"
#include "ast/Transforms.h"
#include "frontend/Parser.h"
#include "race/Detect.h"
#include "repair/RepairDriver.h"
#include "sema/Sema.h"
#include "suite/Benchmarks.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "trace/Replay.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace tdr;

namespace {

struct Workload {
  std::string Name;
  const char *Source;
  std::vector<int64_t> Args;
};

/// The expensive-test scenario record/replay targets (§2: detection re-runs
/// the test on every repair iteration): each task burns substantial
/// computation — transcendental math on locals, none of it monitored — and
/// leaves a single shared write. Replay re-feeds only the monitored event
/// stream, skipping the recomputation; the suite benchmarks, whose loop
/// bodies touch shared arrays on nearly every statement, bound how little
/// replay can win when events are dense.
const char *ComputeBoundSrc = R"(
var Out: double[];
var N: int;

func shade(p: int): double {
  var x: double = toDouble(p) * 0.001 + 0.5;
  var acc: double = 0.0;
  for (var i: int = 0; i < 24; i = i + 1) {
    var t: double = x + toDouble(i);
    acc = acc + exp(0.0 - t * t * 0.01) * cos(t * x) + log(t + 2.0) * sin(x + toDouble(i) * 0.25);
    x = x * 0.993 + 0.0017;
  }
  return acc;
}

func main() {
  N = arg(0);
  Out = new double[N];
  finish {
    for (var p: int = 0; p < N; p = p + 1) {
      async { Out[p] = shade(p); }
    }
  }
  var sum: double = 0.0;
  for (var p: int = 0; p < N; p = p + 1) {
    sum = sum + Out[p];
  }
  print(toInt(sum * 1000.0));
}
)";

struct LoadedProgram {
  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<AstContext> Ctx;
  Program *Prog = nullptr;
};

/// Parses + checks \p Source and strips its finishes (the §7.1 "buggy
/// program" the tool is evaluated on).
bool loadBuggy(const char *Source, LoadedProgram &L) {
  L.SM = std::make_unique<SourceManager>("bench.hj", Source);
  L.Ctx = std::make_unique<AstContext>();
  DiagnosticsEngine Diags;
  Parser P(L.SM->buffer(), *L.Ctx, Diags);
  L.Prog = P.parseProgram();
  if (!Diags.hasErrors())
    runSema(*L.Prog, *L.Ctx, Diags);
  if (Diags.hasErrors())
    return false;
  stripFinishes(*L.Prog);
  return true;
}

/// Runs \p F once untimed (warmup), then repeatedly until \p MinSec of
/// wall-clock accumulates; returns the fastest single rep in ms.
template <typename Fn> double minMs(Fn F, double MinSec) {
  F();
  double Best = 0, Spent = 0;
  while (Spent < MinSec) {
    Timer T;
    F();
    double Ms = T.elapsedMs();
    Spent += Ms / 1000.0;
    if (Best == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

/// Detection wall-clock of every iteration after the first.
double postFirstDetectMs(const RepairStats &S) {
  double T = 0;
  for (size_t I = 1; I < S.DetectMs.size(); ++I)
    T += S.DetectMs[I];
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);
  bool Quick = false;
  std::string OutPath = "BENCH_replay.json";
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
  }
  const double MinSec = Quick ? 0.01 : 0.2;

  std::vector<Workload> Workloads;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    if (Quick && std::strcmp(B.Name, "Fibonacci") &&
        std::strcmp(B.Name, "Quicksort") && std::strcmp(B.Name, "Series"))
      continue;
    Workloads.push_back({B.Name, B.Source, B.RepairArgs});
  }
  // The §7.4 students assignment: parallel quicksort at the cohort's
  // grading input size.
  if (const BenchmarkSpec *Q = findBenchmark("Quicksort"))
    Workloads.push_back({"students-quicksort", Q->Source, {200}});
  Workloads.push_back({"compute-bound", ComputeBoundSrc, {150}});

  bench::JsonReport Report("replay");
  bench::banner("record/replay repair speedup (MRW)");
  std::printf("%-22s %5s %9s %12s %12s %8s\n", "workload", "iters",
              "events", "fresh ms", "replay ms", "speedup");

  double BestSpeedup = 0;
  bool AnyFailed = false;
  for (const Workload &W : Workloads) {
    // End-to-end A: replay disabled, every iteration interprets.
    LoadedProgram A;
    if (!loadBuggy(W.Source, A)) {
      std::fprintf(stderr, "bench_replay: %s failed to load\n",
                   W.Name.c_str());
      AnyFailed = true;
      continue;
    }
    RepairOptions NoReplay;
    NoReplay.Exec.Args = W.Args;
    NoReplay.UseReplay = false;
    RepairResult RFresh = repairProgram(*A.Prog, *A.Ctx, NoReplay);

    // End-to-end B: record once, replay iterations 2..n; keep the store
    // for the steady-state phase.
    LoadedProgram B;
    if (!loadBuggy(W.Source, B)) {
      AnyFailed = true;
      continue;
    }
    trace::TraceStore Store;
    RepairOptions WithReplay;
    WithReplay.Exec.Args = W.Args;
    WithReplay.Store = &Store;
    RepairResult RReplay = repairProgram(*B.Prog, *B.Ctx, WithReplay);

    if (!RFresh.Success || !RReplay.Success) {
      std::fprintf(stderr, "bench_replay: %s repair failed: %s\n",
                   W.Name.c_str(),
                   (RFresh.Success ? RReplay : RFresh).Error.c_str());
      AnyFailed = true;
      continue;
    }

    // Steady-state: one detection on the repaired program, interpreted vs
    // replayed through the final edit map.
    const trace::TraceEntry *Entry = Store.find(0);
    trace::ReplayPlan Plan = trace::buildReplayPlan(*B.Prog, Entry->Edits);
    double FreshMs = minMs(
        [&] {
          ExecOptions E;
          E.Args = W.Args;
          detectRaces(*B.Prog, EspBagsDetector::Mode::MRW, std::move(E));
        },
        MinSec);
    double ReplayMs = minMs(
        [&] {
          detectRaces(*B.Prog, EspBagsDetector::Mode::MRW, Entry->Trace,
                      Plan);
        },
        MinSec);
    double Speedup = ReplayMs > 0 ? FreshMs / ReplayMs : 0;
    if (Speedup > BestSpeedup)
      BestSpeedup = Speedup;

    Report.add()
        .str("name", W.Name)
        .str("mode", "MRW")
        .num("iterations", static_cast<uint64_t>(RReplay.Stats.Iterations))
        .num("finishes", static_cast<uint64_t>(RReplay.Stats.FinishesInserted))
        .num("events", static_cast<uint64_t>(Entry->Trace.Log.size()))
        .num("repair_detect_ms_fresh", postFirstDetectMs(RFresh.Stats))
        .num("repair_detect_ms_replay", postFirstDetectMs(RReplay.Stats))
        .num("fresh_detect_ms", FreshMs)
        .num("replay_detect_ms", ReplayMs)
        .num("speedup", Speedup);
    std::printf("%-22s %5u %9zu %12.3f %12.3f %7.2fx\n", W.Name.c_str(),
                RReplay.Stats.Iterations, Entry->Trace.Log.size(), FreshMs,
                ReplayMs, Speedup);
  }

  bench::banner("Summary");
  std::printf("best steady-state replay speedup: %.2fx\n", BestSpeedup);

  if (Report.numRecords() == 0) {
    std::fprintf(stderr, "bench_replay: no workload produced a result\n");
    return 1;
  }
  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_replay: failed to write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)%s\n", OutPath.c_str(),
              Report.numRecords(), AnyFailed ? " (some workloads skipped)" : "");
  return 0;
}
