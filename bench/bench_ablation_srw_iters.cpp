//===- bench_ablation_srw_iters.cpp - SRW iteration-count ablation --------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Ablation: how many detect/repair iterations each ESP-bags variant needs
// until a detection run confirms race freedom (paper §7.3: MRW fixes
// everything after one detection; SRW may need several repair rounds plus
// the confirming run, and needed exactly two runs on the paper's suite).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "suite/Experiment.h"

using namespace tdr;
using namespace tdr::bench;

int main() {
  banner("Ablation: detection iterations to convergence, SRW vs MRW");
  std::printf("%-14s %12s %12s %16s %16s\n", "Benchmark", "SRW iters",
              "MRW iters", "SRW finishes", "MRW finishes");
  rule(74);
  unsigned MaxSrw = 0, MaxMrw = 0;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    RepairExperiment Srw =
        runRepairExperiment(B, EspBagsDetector::Mode::SRW);
    RepairExperiment Mrw =
        runRepairExperiment(B, EspBagsDetector::Mode::MRW);
    std::printf("%-14s %12u %12u %16u %16u%s%s\n", B.Name, Srw.Iterations,
                Mrw.Iterations, Srw.Finishes, Mrw.Finishes,
                Srw.Ok ? "" : " [SRW FAILED]", Mrw.Ok ? "" : " [MRW FAILED]");
    MaxSrw = std::max(MaxSrw, Srw.Iterations);
    MaxMrw = std::max(MaxMrw, Mrw.Iterations);
  }
  std::printf("\nIteration counts include the final confirming detection "
              "run.\nWorst case: SRW = %u, MRW = %u (paper: SRW needed two "
              "runs, MRW one repair run).\n",
              MaxSrw, MaxMrw);
  return 0;
}
