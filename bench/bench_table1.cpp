//===- bench_table1.cpp - Table 1: the benchmark suite --------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Regenerates Table 1: the list of benchmarks with their sources and input
// sizes, extended with static program statistics and a compile check of
// every HJ-mini source. The "performance" sizes are the interpreter-scale
// substitutions documented in DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ast/Transforms.h"
#include "suite/Benchmarks.h"
#include "suite/Experiment.h"

using namespace tdr;
using namespace tdr::bench;

int main() {
  banner("Table 1: List of Benchmarks Evaluated");
  std::printf("%-9s %-14s %-48s %-30s %-30s %6s %6s %7s\n", "Source",
              "Benchmark", "Description", "Input (repair)", "Input (perf)",
              "Stmts", "Asyncs", "Finish");
  rule(160);
  for (const BenchmarkSpec &B : allBenchmarks()) {
    LoadedBenchmark L = loadBenchmark(B.Source);
    unsigned Stmts = countStmts(*L.Prog);
    size_t Asyncs = collectAsyncs(*L.Prog).size();
    size_t Finishes = collectFinishes(*L.Prog).size();
    std::printf("%-9s %-14s %-48s %-30s %-30s %6u %6zu %7zu\n", B.Suite,
                B.Name, B.Description, B.RepairInputDesc, B.PerfInputDesc,
                Stmts, Asyncs, Finishes);
  }
  std::printf("\nAll %zu benchmark programs compile and type-check.\n",
              allBenchmarks().size());
  return 0;
}
