//===- bench_fig16.cpp - Figure 16: sequential vs parallel vs repaired ----===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Regenerates Figure 16: execution times of the sequential, original
// parallel, and repaired parallel versions of each benchmark on the
// performance input. The paper measures wall clock on 12 cores; this
// container has one core, so the parallel columns are modeled from a
// deterministic greedy 12-processor schedule over the measured computation
// DAG (see DESIGN.md, substitutions): modeled-ms = seq-ms * T12 / T1.
//
// The shape to reproduce: for every benchmark, repaired-parallel time is
// almost identical to original-parallel time, and both are well below
// sequential.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "suite/Experiment.h"

using namespace tdr;
using namespace tdr::bench;

int main(int Argc, char **Argv) {
  ObsSession Obs(Argc, Argv);
  banner("Figure 16: execution times (performance input, P = 12 modeled)");
  std::printf("%-14s %12s %16s %16s %10s %10s %12s\n", "Benchmark",
              "Seq (ms)", "Original (ms)", "Repaired (ms)", "Spd orig",
              "Spd rep", "Rep/Orig");
  rule(96);
  bool AllClose = true;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    PerfPoint P = runPerfExperiment(B, 12);
    if (!P.Ok) {
      std::printf("%-14s FAILED: %s\n", B.Name, P.Error.c_str());
      AllClose = false;
      continue;
    }
    double Orig = P.originalParMs();
    double Rep = P.repairedParMs();
    double Ratio = Orig > 0 ? Rep / Orig : 1.0;
    std::printf("%-14s %12.2f %16.2f %16.2f %9.2fx %9.2fx %12.3f%s\n",
                B.Name, P.SeqMs, Orig, Rep,
                Orig > 0 ? P.SeqMs / Orig : 0.0,
                Rep > 0 ? P.SeqMs / Rep : 0.0, Ratio,
                Ratio <= 1.10 ? "" : "  [repair >10% slower]");
    if (Ratio > 1.10)
      AllClose = false;
  }
  std::printf("\n%s\n",
              AllClose
                  ? "Paper claim holds: repaired parallel performance is "
                    "almost identical to the original on every benchmark."
                  : "NOTE: at least one benchmark deviates; see rows above.");
  return 0;
}
