//===- bench_constructs.cpp - Construct-choice repair harness -------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Measures what the per-edge construct chooser buys over the paper's
// finish-only repair on the construct suite (src/suite/Constructs.h):
// each program is repaired under three allowlists — finish-only, the
// default (finish + future-forcing), and the full vocabulary (isolated
// included) — and each run reports the repair-choice distribution
// (finishes / forces / isolated inserted) plus the chooser's modeled
// critical-path cost, summed over dependence groups, against the same
// program's finish-only repair. The cost numbers come from the
// placement model (deterministic work units, no timing noise), so
// cost_gain_vs_finish is gate-able in CI: tools/check_bench.py pins that
// forcing wins on FuturePipeline and isolation wins on IsolatedAccum.
//
// Emits BENCH_constructs.json (see --out) in the shared schema validated
// by tools/check_bench.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "repair/ConstructChoice.h"
#include "repair/RepairDriver.h"
#include "suite/Constructs.h"
#include "support/Timer.h"

#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace tdr;

namespace {

/// Modeled costs of one repair run, summed over distinct dependence
/// groups (several repairs in one group share the group's plan cost, so
/// the sum dedupes by iteration + NS-LCA).
struct ModelCosts {
  uint64_t Before = 0; ///< no repairs at all
  uint64_t Chosen = 0; ///< the chosen plan (isolated penalties in)
};

ModelCosts sumGroupCosts(const diag::RunDiag &Diag) {
  ModelCosts C;
  std::set<std::pair<unsigned, uint32_t>> Seen;
  for (const diag::FinishProvenance &P : Diag.Repairs) {
    if (!Seen.insert({P.Iteration, P.GroupLcaId}).second)
      continue;
    C.Before += P.CostBefore;
    C.Chosen += P.CostAfter;
  }
  return C;
}

struct MaskRow {
  const char *Label;
  unsigned Mask;
};

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);
  std::string OutPath = "BENCH_constructs.json";
  for (int I = 1; I != Argc; ++I) {
    // --quick accepted for check_bench uniformity; the suite is already
    // three programs x three masks of model-cost arithmetic.
    if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
  }

  const MaskRow Masks[3] = {
      {"finish", constructs::Finish},
      {"default", constructs::Default},
      {"all", constructs::All},
  };

  bench::JsonReport Report("constructs");
  bench::banner("construct-choosing repair (MRW, modeled costs)");
  std::printf("%-28s %7s %6s %8s %10s %10s %8s\n", "program/constructs",
              "finish", "force", "isolated", "cost", "finishcost", "gain");

  bool AnyFailed = false;
  for (const BenchmarkSpec &B : constructBenchmarks()) {
    // The finish-only run of the same program is the baseline every other
    // allowlist is compared against (the Masks array leads with it).
    uint64_t FinishBase = 0;
    for (const MaskRow &M : Masks) {
      RepairOptions Opts;
      Opts.Exec.Args = B.RepairArgs;
      Opts.Constructs = M.Mask;
      Opts.CollectDiag = true;
      std::string Repaired;
      Timer T;
      RepairResult R = repairSource(B.Source, Repaired, Opts);
      double Ms = T.elapsedMs();
      std::string Name = std::string(B.Name) + "/" + M.Label;
      if (!R.Success) {
        std::fprintf(stderr, "bench_constructs: %s repair failed: %s\n",
                     Name.c_str(), R.Error.c_str());
        AnyFailed = true;
        continue;
      }
      ModelCosts C = sumGroupCosts(R.Diag);
      if (M.Mask == constructs::Finish)
        FinishBase = C.Chosen;
      double Gain = C.Chosen ? static_cast<double>(FinishBase) /
                                   static_cast<double>(C.Chosen)
                             : 1.0;
      Report.add()
          .str("name", Name)
          .str("program", B.Name)
          .str("constructs", M.Label)
          .str("mode", "MRW")
          .num("finishes", static_cast<uint64_t>(R.Stats.FinishesInserted))
          .num("forces", static_cast<uint64_t>(R.Stats.ForcesInserted))
          .num("isolated", static_cast<uint64_t>(R.Stats.IsolatedInserted))
          .num("iterations", static_cast<uint64_t>(R.Stats.Iterations))
          .num("cost_before", C.Before)
          .num("cost_chosen", C.Chosen)
          .num("cost_all_finish", FinishBase)
          .num("cost_gain_vs_finish", Gain)
          .num("repair_ms", Ms);
      std::printf("%-28s %7u %6u %8u %10llu %10llu %7.2fx\n", Name.c_str(),
                  R.Stats.FinishesInserted, R.Stats.ForcesInserted,
                  R.Stats.IsolatedInserted,
                  static_cast<unsigned long long>(C.Chosen),
                  static_cast<unsigned long long>(FinishBase), Gain);
    }
  }

  if (AnyFailed || Report.numRecords() == 0) {
    std::fprintf(stderr, "bench_constructs: some repairs failed\n");
    return 1;
  }
  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_constructs: failed to write %s\n",
                 OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", OutPath.c_str(),
              Report.numRecords());
  return 0;
}
