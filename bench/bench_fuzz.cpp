//===- bench_fuzz.cpp - Fuzz-farm throughput harness ----------------------===//
//
// Part of the tdr project (PLDI 2014 race-repair reproduction).
//
// Measures the fuzz farm's program throughput so overnight-campaign sizing
// (EXPERIMENTS.md "Million-program overnight run") rests on a number CI
// tracks instead of folklore. Two row families:
//
//   * oracle — serial differential-oracle cost per generator profile
//     (default async-finish, the full construct vocabulary, the sparse
//     heap shape), i.e. the per-program price of one fuzz iteration;
//   * farm — end-to-end `runFuzz` wall clock at 1/2/4 workers over the
//     rotated-profile mix, with the parallel speedup vs the 1-worker run
//     (the farm derives seeds by index and merges in submission order, so
//     every row checks the same programs).
//
// Emits BENCH_fuzz.json (see --out) in the shared schema validated by
// tools/check_bench.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"
#include "fuzz/RandomProgram.h"
#include "support/Timer.h"

#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace tdr;

namespace {

struct RowStats {
  size_t Programs = 0;
  double Seconds = 0;
  uint64_t DetectRuns = 0;
  uint64_t Findings = 0;
};

/// Serial oracle throughput over \p Programs generated programs of one
/// profile. Mirrors the farm's per-profile oracle configuration: the
/// construct profile repairs with the full construct vocabulary, the
/// sparse profile skips the repair legs (huge index spaces make repaired
/// re-execution disproportionately slow, exactly as in the farm).
RowStats benchOracle(fuzz::FuzzProfile Profile, size_t Programs,
                     uint64_t Seed) {
  fuzz::OracleConfig Config;
  if (Profile == fuzz::FuzzProfile::Constructs)
    Config.AllConstructs = true;
  if (Profile == fuzz::FuzzProfile::Sparse)
    Config.CheckRepair = false;

  RowStats Stats;
  Timer T;
  for (size_t I = 0; I != Programs; ++I) {
    fuzz::RandomProgramGen Gen(Seed + I);
    if (Profile == fuzz::FuzzProfile::Constructs)
      Gen.enableConstructs();
    if (Profile == fuzz::FuzzProfile::Sparse)
      Gen.enableSparseHeap();
    fuzz::OracleOutcome Out = fuzz::runOracle(Gen.generate(), Config);
    Stats.DetectRuns += Out.DetectRuns;
    Stats.Findings += Out.Findings.size();
  }
  Stats.Programs = Programs;
  Stats.Seconds = T.elapsedSec();
  return Stats;
}

/// End-to-end farm run (generation + oracle + reduction) at \p Jobs
/// workers; same seed and program count for every jobs setting so the
/// speedup compares identical work.
RowStats benchFarm(unsigned Jobs, size_t Programs, uint64_t Seed) {
  fuzz::FuzzOptions O;
  O.Programs = Programs;
  O.Seed = Seed;
  O.Jobs = Jobs;
  O.TrophyDir.clear(); // throughput run; never persist trophies
  O.Reduce = false;

  RowStats Stats;
  Timer T;
  fuzz::FuzzSummary S = fuzz::runFuzz(O);
  Stats.Programs = S.ProgramsRun;
  Stats.Seconds = T.elapsedSec();
  Stats.DetectRuns = S.DetectRuns;
  Stats.Findings = S.Findings.size();
  return Stats;
}

bench::JsonRecord &addRow(bench::JsonReport &Report, const std::string &Name,
                          const char *Family, const char *Profile,
                          unsigned Jobs, const RowStats &Stats,
                          double Speedup) {
  double Secs = Stats.Seconds > 0 ? Stats.Seconds : 1e-9;
  std::printf("%-18s %8zu programs %8.3fs %10.1f prog/s %8llu detects\n",
              Name.c_str(), Stats.Programs, Stats.Seconds,
              Stats.Programs / Secs,
              static_cast<unsigned long long>(Stats.DetectRuns));
  return Report.add()
      .str("name", Name)
      .str("family", Family)
      .str("profile", Profile)
      .num("jobs", static_cast<uint64_t>(Jobs))
      .num("programs", static_cast<uint64_t>(Stats.Programs))
      .num("seconds", Stats.Seconds)
      .num("programs_per_sec", Stats.Programs / Secs)
      .num("detect_runs", Stats.DetectRuns)
      .num("findings", Stats.Findings)
      .num("speedup_vs_1job", Speedup);
}

} // namespace

int main(int Argc, char **Argv) {
  bench::ObsSession Obs(Argc, Argv);

  bool Quick = false;
  std::string OutPath = "BENCH_fuzz.json";
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 != Argc)
      OutPath = Argv[++I];
  }

  const size_t OracleN = Quick ? 12 : 64;
  const size_t FarmN = Quick ? 24 : 192;
  const uint64_t Seed = 7;

  bench::JsonReport Report("fuzz");

  bench::banner("Differential oracle throughput by generator profile");
  const fuzz::FuzzProfile Profiles[] = {fuzz::FuzzProfile::Default,
                                        fuzz::FuzzProfile::Constructs,
                                        fuzz::FuzzProfile::Sparse};
  for (fuzz::FuzzProfile P : Profiles) {
    const char *Name = fuzz::fuzzProfileName(P);
    RowStats Stats = benchOracle(P, OracleN, Seed);
    addRow(Report, std::string("oracle/") + Name, "oracle", Name, /*Jobs=*/1,
           Stats, /*Speedup=*/1.0);
  }

  bench::banner("Farm scaling (runFuzz over the rotated-profile mix)");
  unsigned Cores = std::thread::hardware_concurrency();
  std::vector<unsigned> JobCounts = {1};
  if (Cores >= 2)
    JobCounts.push_back(2);
  if (Cores >= 4)
    JobCounts.push_back(4);
  double Baseline = 0;
  for (unsigned Jobs : JobCounts) {
    RowStats Stats = benchFarm(Jobs, FarmN, Seed);
    if (Jobs == 1)
      Baseline = Stats.Seconds;
    double Speedup =
        Stats.Seconds > 0 && Baseline > 0 ? Baseline / Stats.Seconds : 0;
    addRow(Report, "farm/j" + std::to_string(Jobs), "farm", "mixed", Jobs,
           Stats, Speedup);
  }

  if (Report.numRecords() == 0) {
    std::fprintf(stderr, "bench_fuzz: no results\n");
    return 1;
  }
  if (!Report.writeTo(OutPath)) {
    std::fprintf(stderr, "bench_fuzz: failed to write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu rows)\n", OutPath.c_str(),
              Report.numRecords());
  return 0;
}
